#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

/// Echo-style server harness: collects received bytes, optionally replies.
struct ServerApp {
  std::string received;
  bool peer_closed{false};
  std::shared_ptr<TcpConnection> connection;

  TcpListener::AcceptHandler accept_handler(std::string reply = {},
                                            bool close_after_reply = false) {
    return [this, reply, close_after_reply](
               const std::shared_ptr<TcpConnection>& conn) {
      connection = conn;
      // Callbacks live inside the connection: capturing the shared_ptr
      // there would be a reference cycle (leak). The raw pointer is safe
      // because callbacks only fire while the connection is alive.
      TcpConnection* raw = conn.get();
      TcpConnection::Callbacks cb;
      cb.on_data = [this, raw, reply,
                    close_after_reply](std::string_view bytes) {
        received.append(bytes);
        if (!reply.empty() && received.size() >= 5) {  // reply once primed
          raw->send(reply);
          if (close_after_reply) {
            raw->close();
          }
        }
      };
      cb.on_peer_close = [this, raw] {
        peer_closed = true;
        raw->close();
      };
      return cb;
    };
  }
};

TEST(Tcp, HandshakeCompletesThroughDelay) {
  SimNet net;
  net.add_delay(10_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  bool connected = false;
  Microseconds connected_at = 0;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_connected =
                        [&] {
                          connected = true;
                          connected_at = net.loop.now();
                        }}};
  net.loop.run();
  EXPECT_TRUE(connected);
  // SYN (10ms) + SYN-ACK (10ms) = connected at client after 1 RTT.
  EXPECT_EQ(connected_at, 20_ms);
  EXPECT_NEAR(static_cast<double>(client.connection().smoothed_rtt()), 20'000, 1.0);
}

TEST(Tcp, DataArrivesIntactAndInOrder) {
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  TcpClient client{net.fabric, kServerAddr, {}};
  std::string payload;
  for (int i = 0; i < 10'000; ++i) {
    payload += static_cast<char>('a' + i % 26);
  }
  client.connection().send(payload);
  net.loop.run();
  EXPECT_EQ(server.received, payload);
}

TEST(Tcp, BidirectionalTransfer) {
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  const std::string reply(20'000, 'R');
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler(reply)};

  std::string client_received;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_data = [&](std::string_view b) { client_received.append(b); }}};
  client.connection().send("hello");
  net.loop.run();
  EXPECT_EQ(server.received, "hello");
  EXPECT_EQ(client_received, reply);
}

TEST(Tcp, SlowStartLimitsFirstRoundTrip) {
  SimNet net;
  net.add_delay(50_ms);
  ServerApp server;
  // Reply large enough to need several RTTs of window growth.
  const std::string reply(200 * kMss, 'x');
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler(reply)};

  std::size_t received = 0;
  Microseconds done_at = 0;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_data =
                        [&](std::string_view b) {
                          received += b.size();
                          done_at = net.loop.now();
                        }}};
  client.connection().send("hello");
  net.loop.run();
  ASSERT_EQ(received, reply.size());
  // With IW10 and unlimited bandwidth: 200 segments need cwnd growth
  // 10,20,40,80,160 -> 5 round trips after the request lands.
  // Request lands ~150 ms (handshake + one-way). Expect > 4 RTTs total
  // and well under a second.
  EXPECT_GT(done_at, 400_ms);
  EXPECT_LT(done_at, 1_s);
}

TEST(Tcp, ThroughputBoundedByTraceLink) {
  SimNet net;
  // 1 Mbit/s downlink, fast uplink.
  net.add_link(trace::constant_rate(50e6, 1_s), trace::constant_rate(1e6, 2_s));
  ServerApp server;
  const std::string reply(125'000, 'x');  // 1 Mbit of payload
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler(reply)};

  std::size_t received = 0;
  Microseconds done_at = 0;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_data =
                        [&](std::string_view b) {
                          received += b.size();
                          done_at = net.loop.now();
                        }}};
  client.connection().send("hello");
  net.loop.run();
  ASSERT_EQ(received, reply.size());
  // 1 Mbit of payload + overheads over a 1 Mbit/s link: at least 1 s.
  EXPECT_GT(done_at, 1_s);
  EXPECT_LT(done_at, 2_s);
}

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, ReliableDeliveryUnderLoss) {
  const double loss_rate = GetParam();
  SimNet net;
  net.add_delay(10_ms);
  net.add_loss(util::Rng{999}, loss_rate, loss_rate);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  std::string payload;
  util::Rng rng{7};
  for (int i = 0; i < 50'000; ++i) {
    payload += static_cast<char>(rng.uniform_int(0, 255));
  }
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(payload);
  net.loop.run();
  EXPECT_EQ(server.received, payload);  // exactly once, in order
  if (loss_rate >= 0.05) {  // at 1% a 35-segment flow may get lucky
    EXPECT_GT(client.connection().retransmissions(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2));

TEST(Tcp, CloseHandshakeReachesBothSides) {
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  bool client_saw_close = false;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_peer_close = [&] { client_saw_close = true; }}};
  client.connection().send("bye");
  client.connection().close();
  net.loop.run();
  EXPECT_EQ(server.received, "bye");
  EXPECT_TRUE(server.peer_closed);
  EXPECT_TRUE(client_saw_close);          // server FINs back
  EXPECT_TRUE(client.connection().closed());
  EXPECT_EQ(listener.active_connections(), 0u);  // connection reaped
}

TEST(Tcp, ConnectionToUnboundPortIsReset) {
  SimNet net;
  net.add_delay(5_ms);
  // Bind a listener on port 80, then connect to port 81: the fabric drops
  // the packet (no endpoint), so the SYN retries and eventually gives up.
  // Connect to a bound listener's *other* port instead to get an RST fast:
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  bool reset = false;
  TcpConnection::Config config;
  config.max_syn_retries = 1;
  config.initial_rto = 100'000;
  TcpClient client{net.fabric, Address{Ipv4{10, 0, 0, 1}, 81},
                   {.on_reset = [&] { reset = true; }}, config};
  net.loop.run();
  EXPECT_TRUE(reset);  // SYN retries exhausted
}

TEST(Tcp, StrayNonSynPacketGetsRst) {
  SimNet net;
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  // Hand-craft a non-SYN packet from an unknown peer.
  bool got_rst = false;
  const Address rogue{net.fabric.client_ip(), 45000};
  net.fabric.bind(Side::kClient, rogue, [&](Packet&& p) {
    got_rst = p.tcp.rst;
  });
  Packet stray;
  stray.src = rogue;
  stray.dst = kServerAddr;
  stray.tcp.seq = 5;
  stray.tcp.payload = "junk";
  net.fabric.send(Side::kClient, std::move(stray));
  net.loop.run();
  EXPECT_TRUE(got_rst);
}

TEST(Tcp, RetransmissionTimeoutRecoversFromAckLoss) {
  SimNet net;
  net.add_delay(10_ms);
  // Brutal: 40% loss both ways; RTO must eventually push everything through.
  net.add_loss(util::Rng{31337}, 0.4, 0.4);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  std::string payload(10 * kMss, 'z');
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(payload);
  net.loop.run();
  EXPECT_EQ(server.received, payload);
}

TEST(Tcp, BulkTransferIsZeroCopy) {
  // One bulk send() = one shared chunk; every data segment must alias it
  // rather than copying ~kMss bytes per transmission.
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  const std::string payload(100 * kMss, 'z');
  client.connection().send(payload);
  net.loop.run();
  ASSERT_EQ(server.received, payload);
  EXPECT_EQ(client.connection().payload_copy_bytes(), 0u);
}

TEST(Tcp, RetransmissionsAliasSendBufferToo) {
  // Drop a data segment so fast retransmit kicks in: the retransmitted
  // segment must still be a view, not a copy.
  SimNet net;
  net.add_delay(10_ms);
  struct OneShotDropper final : NetworkElement {
    int to_drop{12};
    int seen{0};
    void process(Packet&& p, Direction d) override {
      if (d == Direction::kUplink && !p.tcp.payload.empty() &&
          seen++ == to_drop) {
        return;
      }
      emit(std::move(p), d);
    }
  };
  net.fabric.chain().push_back(std::make_unique<OneShotDropper>());
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(60 * kMss, 'x'));
  net.loop.run();
  ASSERT_EQ(server.received.size(), 60 * kMss);
  EXPECT_GT(client.connection().retransmissions(), 0u);
  EXPECT_EQ(client.connection().payload_copy_bytes(), 0u);
}

TEST(Tcp, SegmentsOfOneSendShareTheBuffer) {
  // Observe segments in flight: all data segments of a single send()
  // alias one underlying buffer (refcount bumps, no byte copies).
  SimNet net;
  net.add_delay(1_ms);
  struct PayloadTap final : NetworkElement {
    std::vector<Payload> data_payloads;
    void process(Packet&& p, Direction d) override {
      if (d == Direction::kUplink && !p.tcp.payload.empty()) {
        data_payloads.push_back(p.tcp.payload);
      }
      emit(std::move(p), d);
    }
  };
  auto tap = std::make_unique<PayloadTap>();
  PayloadTap& tap_ref = *tap;
  net.fabric.chain().push_back(std::move(tap));
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(5 * kMss, 'q'));
  net.loop.run();
  ASSERT_GE(tap_ref.data_payloads.size(), 5u);
  for (std::size_t i = 1; i < tap_ref.data_payloads.size(); ++i) {
    EXPECT_TRUE(tap_ref.data_payloads[0].same_buffer(tap_ref.data_payloads[i]))
        << "segment " << i << " does not alias the send buffer";
  }
}

TEST(Tcp, MultiChunkSendBufferCopiesOnlyAtBoundaries) {
  // Many small sends create chunk boundaries; segments spanning one are
  // materialized (counted), everything else still aliases.
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  std::string expected;
  for (int i = 0; i < 40; ++i) {
    std::string piece(1000, static_cast<char>('a' + i % 26));
    expected += piece;
    client.connection().send(std::move(piece));
  }
  net.loop.run();
  ASSERT_EQ(server.received, expected);
  // Copies are bounded by roughly one MSS per boundary crossed, far below
  // the 40 kB that per-segment copying would cost.
  EXPECT_LT(client.connection().payload_copy_bytes(), expected.size() / 2);
}

TEST(Tcp, AppBytesCounted) {
  SimNet net;
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(1000, 'a'));
  net.loop.run();
  EXPECT_EQ(client.connection().bytes_sent_app(), 1000u);
  EXPECT_EQ(server.connection->bytes_received_app(), 1000u);
}

}  // namespace
}  // namespace mahimahi::net
