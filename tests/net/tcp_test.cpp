#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

/// Echo-style server harness: collects received bytes, optionally replies.
struct ServerApp {
  std::string received;
  bool peer_closed{false};
  std::shared_ptr<TcpConnection> connection;

  TcpListener::AcceptHandler accept_handler(std::string reply = {},
                                            bool close_after_reply = false) {
    return [this, reply, close_after_reply](
               const std::shared_ptr<TcpConnection>& conn) {
      connection = conn;
      // Callbacks live inside the connection: capturing the shared_ptr
      // there would be a reference cycle (leak). The raw pointer is safe
      // because callbacks only fire while the connection is alive.
      TcpConnection* raw = conn.get();
      TcpConnection::Callbacks cb;
      cb.on_data = [this, raw, reply,
                    close_after_reply](std::string_view bytes) {
        received.append(bytes);
        if (!reply.empty() && received.size() >= 5) {  // reply once primed
          raw->send(reply);
          if (close_after_reply) {
            raw->close();
          }
        }
      };
      cb.on_peer_close = [this, raw] {
        peer_closed = true;
        raw->close();
      };
      return cb;
    };
  }
};

TEST(Tcp, HandshakeCompletesThroughDelay) {
  SimNet net;
  net.add_delay(10_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  bool connected = false;
  Microseconds connected_at = 0;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_connected =
                        [&] {
                          connected = true;
                          connected_at = net.loop.now();
                        }}};
  net.loop.run();
  EXPECT_TRUE(connected);
  // SYN (10ms) + SYN-ACK (10ms) = connected at client after 1 RTT.
  EXPECT_EQ(connected_at, 20_ms);
  EXPECT_NEAR(static_cast<double>(client.connection().smoothed_rtt()), 20'000, 1.0);
}

TEST(Tcp, DataArrivesIntactAndInOrder) {
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  TcpClient client{net.fabric, kServerAddr, {}};
  std::string payload;
  for (int i = 0; i < 10'000; ++i) {
    payload += static_cast<char>('a' + i % 26);
  }
  client.connection().send(payload);
  net.loop.run();
  EXPECT_EQ(server.received, payload);
}

TEST(Tcp, BidirectionalTransfer) {
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  const std::string reply(20'000, 'R');
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler(reply)};

  std::string client_received;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_data = [&](std::string_view b) { client_received.append(b); }}};
  client.connection().send("hello");
  net.loop.run();
  EXPECT_EQ(server.received, "hello");
  EXPECT_EQ(client_received, reply);
}

TEST(Tcp, SlowStartLimitsFirstRoundTrip) {
  SimNet net;
  net.add_delay(50_ms);
  ServerApp server;
  // Reply large enough to need several RTTs of window growth.
  const std::string reply(200 * kMss, 'x');
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler(reply)};

  std::size_t received = 0;
  Microseconds done_at = 0;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_data =
                        [&](std::string_view b) {
                          received += b.size();
                          done_at = net.loop.now();
                        }}};
  client.connection().send("hello");
  net.loop.run();
  ASSERT_EQ(received, reply.size());
  // With IW10 and unlimited bandwidth: 200 segments need cwnd growth
  // 10,20,40,80,160 -> 5 round trips after the request lands.
  // Request lands ~150 ms (handshake + one-way). Expect > 4 RTTs total
  // and well under a second.
  EXPECT_GT(done_at, 400_ms);
  EXPECT_LT(done_at, 1_s);
}

TEST(Tcp, ThroughputBoundedByTraceLink) {
  SimNet net;
  // 1 Mbit/s downlink, fast uplink.
  net.add_link(trace::constant_rate(50e6, 1_s), trace::constant_rate(1e6, 2_s));
  ServerApp server;
  const std::string reply(125'000, 'x');  // 1 Mbit of payload
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler(reply)};

  std::size_t received = 0;
  Microseconds done_at = 0;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_data =
                        [&](std::string_view b) {
                          received += b.size();
                          done_at = net.loop.now();
                        }}};
  client.connection().send("hello");
  net.loop.run();
  ASSERT_EQ(received, reply.size());
  // 1 Mbit of payload + overheads over a 1 Mbit/s link: at least 1 s.
  EXPECT_GT(done_at, 1_s);
  EXPECT_LT(done_at, 2_s);
}

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, ReliableDeliveryUnderLoss) {
  const double loss_rate = GetParam();
  SimNet net;
  net.add_delay(10_ms);
  net.add_loss(util::Rng{999}, loss_rate, loss_rate);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  std::string payload;
  util::Rng rng{7};
  for (int i = 0; i < 50'000; ++i) {
    payload += static_cast<char>(rng.uniform_int(0, 255));
  }
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(payload);
  net.loop.run();
  EXPECT_EQ(server.received, payload);  // exactly once, in order
  if (loss_rate >= 0.05) {  // at 1% a 35-segment flow may get lucky
    EXPECT_GT(client.connection().retransmissions(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2));

TEST(Tcp, CloseHandshakeReachesBothSides) {
  SimNet net;
  net.add_delay(5_ms);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  bool client_saw_close = false;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_peer_close = [&] { client_saw_close = true; }}};
  client.connection().send("bye");
  client.connection().close();
  net.loop.run();
  EXPECT_EQ(server.received, "bye");
  EXPECT_TRUE(server.peer_closed);
  EXPECT_TRUE(client_saw_close);          // server FINs back
  EXPECT_TRUE(client.connection().closed());
  EXPECT_EQ(listener.active_connections(), 0u);  // connection reaped
}

TEST(Tcp, ConnectionToUnboundPortIsReset) {
  SimNet net;
  net.add_delay(5_ms);
  // Bind a listener on port 80, then connect to port 81: the fabric drops
  // the packet (no endpoint), so the SYN retries and eventually gives up.
  // Connect to a bound listener's *other* port instead to get an RST fast:
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  bool reset = false;
  TcpConnection::Config config;
  config.max_syn_retries = 1;
  config.initial_rto = 100'000;
  TcpClient client{net.fabric, Address{Ipv4{10, 0, 0, 1}, 81},
                   {.on_reset = [&] { reset = true; }}, config};
  net.loop.run();
  EXPECT_TRUE(reset);  // SYN retries exhausted
}

TEST(Tcp, StrayNonSynPacketGetsRst) {
  SimNet net;
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  // Hand-craft a non-SYN packet from an unknown peer.
  bool got_rst = false;
  const Address rogue{net.fabric.client_ip(), 45000};
  net.fabric.bind(Side::kClient, rogue, [&](Packet&& p) {
    got_rst = p.tcp.rst;
  });
  Packet stray;
  stray.src = rogue;
  stray.dst = kServerAddr;
  stray.tcp.seq = 5;
  stray.tcp.payload = "junk";
  net.fabric.send(Side::kClient, std::move(stray));
  net.loop.run();
  EXPECT_TRUE(got_rst);
}

TEST(Tcp, RetransmissionTimeoutRecoversFromAckLoss) {
  SimNet net;
  net.add_delay(10_ms);
  // Brutal: 40% loss both ways; RTO must eventually push everything through.
  net.add_loss(util::Rng{31337}, 0.4, 0.4);
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};

  std::string payload(10 * kMss, 'z');
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(payload);
  net.loop.run();
  EXPECT_EQ(server.received, payload);
}

TEST(Tcp, AppBytesCounted) {
  SimNet net;
  ServerApp server;
  TcpListener listener{net.fabric, kServerAddr, server.accept_handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(1000, 'a'));
  net.loop.run();
  EXPECT_EQ(client.connection().bytes_sent_app(), 1000u);
  EXPECT_EQ(server.connection->bytes_received_app(), 1000u);
}

}  // namespace
}  // namespace mahimahi::net
