// TCP congestion-control dynamics: slow start growth, loss response,
// RTO backoff, keep-alive warm-window behaviour. These pin down the
// transport properties the page-load results depend on.

#include <gtest/gtest.h>

#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

struct SinkServer {
  std::string received;
  std::shared_ptr<TcpConnection> connection;

  TcpListener::AcceptHandler handler() {
    return [this](const std::shared_ptr<TcpConnection>& conn) {
      connection = conn;
      TcpConnection::Callbacks cb;
      cb.on_data = [this](std::string_view b) { received.append(b); };
      // Raw pointer: a shared_ptr captured in the connection's own
      // callbacks would be a reference cycle (leak).
      cb.on_peer_close = [raw = conn.get()] { raw->close(); };
      return cb;
    };
  }
};

TEST(TcpDynamics, InitialWindowIsTenSegments) {
  SimNet net;
  net.add_delay(50_ms);  // long RTT: first flight fully visible
  auto meter = std::make_unique<MeterBox>();
  MeterBox& m = *meter;
  net.fabric.chain().push_back(std::move(meter));

  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(100 * kMss, 'x'));
  // Run just past the first data flight (handshake 100 ms + half RTT).
  net.loop.run_until(190_ms);
  // Uplink packets so far: SYN + handshake ACK + first window of data.
  const auto packets = m.packets(Direction::kUplink);
  EXPECT_GE(packets, 2u + 10u);
  EXPECT_LE(packets, 2u + 12u);  // IW10 (+ slight scheduling slack)
  net.loop.run();
  EXPECT_EQ(server.received.size(), 100 * kMss);
}

TEST(TcpDynamics, SlowStartRoughlyDoublesPerRtt) {
  SimNet net;
  net.add_delay(50_ms);
  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(300 * kMss, 'x'));

  // Sample received bytes at RTT boundaries after the handshake (~100 ms).
  std::vector<std::size_t> at_rtt;
  for (int rtt = 1; rtt <= 4; ++rtt) {
    net.loop.run_until(100_ms + rtt * 100_ms + 60_ms);
    at_rtt.push_back(server.received.size());
  }
  net.loop.run();
  // Each RTT's delivered increment should grow geometrically (~2x).
  const double first = static_cast<double>(at_rtt[1] - at_rtt[0]);
  const double second = static_cast<double>(at_rtt[2] - at_rtt[1]);
  EXPECT_GT(second, first * 1.5);
  EXPECT_EQ(server.received.size(), 300 * kMss);
}

TEST(TcpDynamics, LossHalvesDeliveryRateTemporarily) {
  // With loss, completion takes measurably longer than without.
  const std::string payload(400 * kMss, 'x');
  Microseconds clean_done = 0;
  Microseconds lossy_done = 0;
  for (const double loss : {0.0, 0.02}) {
    SimNet net;
    net.add_delay(20_ms);
    net.add_link(trace::constant_rate(30e6, 1_s), trace::constant_rate(30e6, 1_s));
    if (loss > 0) {
      net.add_loss(util::Rng{42}, loss, loss);
    }
    SinkServer server;
    TcpListener listener{net.fabric, kServerAddr, server.handler()};
    TcpClient client{net.fabric, kServerAddr, {}};
    client.connection().send(payload);
    net.loop.run();
    ASSERT_EQ(server.received.size(), payload.size());
    (loss == 0.0 ? clean_done : lossy_done) = net.loop.now();
  }
  EXPECT_GT(lossy_done, clean_done * 1.2);
}

TEST(TcpDynamics, FastRetransmitBeatsRtoForIsolatedLoss) {
  // A single mid-stream drop should recover via dup-acks in ~1 RTT, far
  // below the 200 ms minimum RTO.
  SimNet net;
  net.add_delay(10_ms);
  // Drop exactly one uplink data packet using a one-shot dropper element.
  struct OneShotDropper final : NetworkElement {
    int to_drop_index{15};
    int seen{0};
    void process(Packet&& p, Direction d) override {
      if (d == Direction::kUplink && !p.tcp.payload.empty() &&
          seen++ == to_drop_index) {
        return;  // dropped
      }
      emit(std::move(p), d);
    }
  };
  net.fabric.chain().push_back(std::make_unique<OneShotDropper>());

  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(60 * kMss, 'x'));
  net.loop.run();
  ASSERT_EQ(server.received.size(), 60 * kMss);
  // Without loss this takes ~3 RTT ≈ 60 ms + transfer; a fast retransmit
  // adds ~1 RTT. An RTO would add >= 200 ms. Assert we stayed well below.
  EXPECT_LT(net.loop.now(), 250_ms);
  EXPECT_EQ(client.connection().retransmissions(), 1u);
}

TEST(TcpDynamics, RtoBackoffIsExponential) {
  // SYN to a blackhole: retries at ~1s, 2s, 4s, ... (initial RTO 1s).
  SimNet net;
  // Meter first (client side), then the blackhole: the meter counts what
  // the client sends before the loss box eats it.
  auto meter = std::make_unique<MeterBox>();
  MeterBox& m = *meter;
  net.fabric.chain().push_back(std::move(meter));
  net.add_loss(util::Rng{1}, 1.0, 1.0);  // everything dies

  bool reset = false;
  TcpConnection::Config config;
  config.max_syn_retries = 3;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_reset = [&] { reset = true; }}, config};
  net.loop.run();
  EXPECT_TRUE(reset);
  // SYN + 3 retries crossed the meter.
  EXPECT_EQ(m.packets(Direction::kUplink), 4u);
  // Total time ~ 1 + 2 + 4 (+ last wait) seconds.
  EXPECT_GE(net.loop.now(), 6_s);
  EXPECT_LE(net.loop.now(), 20_s);
}

TEST(TcpDynamics, WarmConnectionSkipsSlowStartOnSecondTransfer) {
  // Second response on a keep-alive connection rides the opened cwnd:
  // it completes in fewer RTTs than the first.
  SimNet net;
  net.add_delay(40_ms);
  HttpServer server{net.fabric, kServerAddr, [](const http::Request&) {
                      return http::make_ok(std::string(40 * kMss, 'r'));
                    }};
  HttpClientConnection client{net.fabric, kServerAddr};

  Microseconds first_done = 0;
  Microseconds second_done = 0;
  client.fetch(http::make_get("http://10.0.0.1/a"), [&](http::Response) {
    first_done = net.loop.now();
  });
  client.fetch(http::make_get("http://10.0.0.1/b"), [&](http::Response) {
    second_done = net.loop.now();
  });
  net.loop.run();
  ASSERT_GT(first_done, 0);
  ASSERT_GT(second_done, first_done);
  const Microseconds first_elapsed = first_done;         // includes handshake
  const Microseconds second_elapsed = second_done - first_done;
  EXPECT_LT(second_elapsed, first_elapsed);  // warm path is faster
}

TEST(TcpDynamics, SmoothedRttTracksPathDelay) {
  SimNet net;
  net.add_delay(35_ms);
  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(std::string(50 * kMss, 'x'));
  net.loop.run();
  EXPECT_NEAR(static_cast<double>(client.connection().smoothed_rtt()),
              70'000.0, 7'000.0);
}

}  // namespace
}  // namespace mahimahi::net
