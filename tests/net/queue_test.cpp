#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace mahimahi::net {
namespace {

Packet make_packet(std::size_t payload_bytes, std::uint64_t id = 0) {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.tcp.payload = std::string(payload_bytes, 'x');
  p.id = id;
  return p;
}

TEST(InfiniteQueue, FifoAndByteAccounting) {
  InfiniteQueue q;
  q.enqueue(make_packet(100, 1), 0);
  q.enqueue(make_packet(200, 2), 0);
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.byte_count(), 100 + 200 + 2 * kTcpHeaderBytes);
  EXPECT_EQ(q.dequeue(0)->id, 1u);
  EXPECT_EQ(q.dequeue(0)->id, 2u);
  EXPECT_FALSE(q.dequeue(0).has_value());
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_EQ(q.drops(), 0u);
}

TEST(DropTailQueue, DropsArrivalsWhenPacketLimitHit) {
  DropTailQueue q{2, 0};
  q.enqueue(make_packet(10, 1), 0);
  q.enqueue(make_packet(10, 2), 0);
  q.enqueue(make_packet(10, 3), 0);  // dropped
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.dequeue(0)->id, 1u);  // head survives (tail drop)
  EXPECT_EQ(q.dequeue(0)->id, 2u);
}

TEST(DropTailQueue, ByteLimit) {
  DropTailQueue q{0, 2 * kMtuBytes};
  q.enqueue(make_packet(kMss, 1), 0);
  q.enqueue(make_packet(kMss, 2), 0);
  q.enqueue(make_packet(kMss, 3), 0);  // would exceed 2 MTU of bytes
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(DropTailQueue, RequiresABound) {
  EXPECT_THROW(DropTailQueue(0, 0), std::invalid_argument);
}

TEST(DropTailQueue, DrainThenAcceptAgain) {
  DropTailQueue q{1, 0};
  q.enqueue(make_packet(10, 1), 0);
  q.enqueue(make_packet(10, 2), 0);  // dropped
  EXPECT_EQ(q.dequeue(0)->id, 1u);
  q.enqueue(make_packet(10, 3), 0);  // fits now
  EXPECT_EQ(q.dequeue(0)->id, 3u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(DropHeadQueue, EvictsOldestToAdmitNew) {
  DropHeadQueue q{2, 0};
  q.enqueue(make_packet(10, 1), 0);
  q.enqueue(make_packet(10, 2), 0);
  q.enqueue(make_packet(10, 3), 0);  // evicts id 1
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.dequeue(0)->id, 2u);
  EXPECT_EQ(q.dequeue(0)->id, 3u);
}

TEST(DropHeadQueue, OversizedPacketIsDroppedNotLooped) {
  DropHeadQueue q{0, 100};  // byte bound smaller than any MTU packet
  q.enqueue(make_packet(kMss, 1), 0);
  EXPECT_EQ(q.packet_count(), 0u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(CoDelQueue, NoDropsWhenSojournBelowTarget) {
  CoDelQueue q{5'000, 100'000};
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), i * 10);
    // Drain immediately: sojourn ~0.
    EXPECT_TRUE(q.dequeue(i * 10 + 1).has_value());
  }
  EXPECT_EQ(q.drops(), 0u);
}

TEST(CoDelQueue, DropsUnderStandingQueue) {
  CoDelQueue q{5'000, 100'000};
  // Build a standing queue: 500 packets at t=0, drained slowly.
  for (int i = 0; i < 500; ++i) {
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), 0);
  }
  // Drain one packet per 10 ms: sojourn far above 5 ms target.
  Microseconds now = 0;
  std::size_t delivered = 0;
  while (true) {
    now += 10'000;
    const auto p = q.dequeue(now);
    if (!p) {
      break;
    }
    ++delivered;
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_EQ(delivered + q.drops(), 500u);
}

TEST(CoDelQueue, RejectsBadParameters) {
  EXPECT_THROW(CoDelQueue(0, 100'000), std::invalid_argument);
  EXPECT_THROW(CoDelQueue(5'000, 0), std::invalid_argument);
}

TEST(CoDelQueue, ByteCountConsistentAfterAqmDrops) {
  CoDelQueue q{5'000, 100'000};
  for (int i = 0; i < 300; ++i) {
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), 0);
  }
  // Drain slowly so CoDel drops some packets at dequeue; after every
  // dequeue, byte_count must equal exactly what remains queued.
  Microseconds now = 0;
  while (true) {
    now += 10'000;
    const auto p = q.dequeue(now);
    EXPECT_EQ(q.byte_count(),
              q.packet_count() * make_packet(100).wire_size());
    if (!p) {
      break;
    }
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_EQ(q.byte_count(), 0u);
}

TEST(CoDelQueue, EmptyQueueExitsDroppingState) {
  CoDelQueue q{5'000, 100'000};
  // Build a standing queue and drain until CoDel is mid-dropping-state.
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), 0);
  }
  Microseconds now = 0;
  while (q.packet_count() > 0) {
    now += 20'000;
    q.dequeue(now);
  }
  const std::uint64_t drops_at_empty = q.drops();
  EXPECT_GT(drops_at_empty, 0u);
  EXPECT_FALSE(q.dequeue(now + 1).has_value());
  // Fresh, immediately-drained traffic after the drain must sail through:
  // the dropping state must not leak across the empty period.
  for (int i = 0; i < 50; ++i) {
    now += 1'000;
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(1000 + i)), now);
    const auto p = q.dequeue(now + 100);  // sojourn 100 us << 5 ms target
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->id, static_cast<std::uint64_t>(1000 + i));
  }
  EXPECT_EQ(q.drops(), drops_at_empty);
}

TEST(CoDelQueue, ReentryWithinIntervalDecaysDropCount) {
  // RFC 8289 §5.2: re-entering the dropping state shortly after leaving it
  // restarts at drop_count - 2, so the drop rate ramps faster than a cold
  // start. Observable effect: the second congestion episode drops its
  // first packet and keeps control-law state — compare against a fresh
  // queue experiencing the same second episode, which must behave
  // identically *only* if enough time passed. Here we assert the re-entry
  // drops at least as aggressively as the cold start.
  const auto run_episode = [](CoDelQueue& q, Microseconds start, int packets,
                              Microseconds drain_step) {
    for (int i = 0; i < packets; ++i) {
      q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), start);
    }
    Microseconds now = start;
    while (q.packet_count() > 0) {
      now += drain_step;
      q.dequeue(now);
    }
    return now;
  };

  CoDelQueue reentrant{5'000, 100'000};
  const Microseconds after_first = run_episode(reentrant, 0, 200, 10'000);
  const std::uint64_t first_drops = reentrant.drops();
  EXPECT_GT(first_drops, 0u);
  // Second episode begins within one interval of leaving dropping state.
  run_episode(reentrant, after_first + 50'000, 200, 10'000);
  const std::uint64_t second_drops = reentrant.drops() - first_drops;

  CoDelQueue cold{5'000, 100'000};
  run_episode(cold, 0, 200, 10'000);
  const std::uint64_t cold_drops = cold.drops();

  // The decayed drop_count re-entry must drop at least as many packets as
  // a cold start on the identical episode (it skips the initial ramp).
  EXPECT_GE(second_drops, cold_drops);
}

TEST(PieQueue, NoDropsUnderLightLoad) {
  PieQueue q;
  Microseconds now = 0;
  for (int i = 0; i < 500; ++i) {
    now += 5'000;
    q.enqueue(make_packet(kMss, static_cast<std::uint64_t>(i)), now);
    EXPECT_TRUE(q.dequeue(now + 500).has_value());  // sojourn 0.5 ms
  }
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_DOUBLE_EQ(q.drop_probability(), 0.0);
}

TEST(PieQueue, DropsUnderSustainedOverload) {
  PieQueue q;  // 15 ms target
  // Arrivals at 2 packets/ms, service at 1 packet/ms: queue grows without
  // bound unless PIE sheds load. Run well past the 150 ms burst allowance.
  Microseconds now = 0;
  std::uint64_t id = 0;
  for (int ms = 0; ms < 2'000; ++ms) {
    now = ms * 1'000;
    q.enqueue(make_packet(kMss, id++), now);
    q.enqueue(make_packet(kMss, id++), now + 500);
    q.dequeue(now + 900);
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(q.drop_probability(), 0.0);
  // The standing queue must be bounded far below the no-AQM level (~2000
  // packets would have accumulated by now without drops).
  EXPECT_LT(q.packet_count(), 1'000u);
}

TEST(PieQueue, BurstAllowancePassesShortBursts) {
  PieQueue q;
  // A 100 ms burst (inside the 150 ms allowance) then full drain.
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(kMss, static_cast<std::uint64_t>(i)), i * 1'000);
  }
  Microseconds now = 100'000;
  std::size_t out = 0;
  while (q.dequeue(now).has_value()) {
    now += 1'000;
    ++out;
  }
  EXPECT_EQ(out, 100u);
  EXPECT_EQ(q.drops(), 0u);
}

TEST(PieQueue, DeterministicGivenSameSeed) {
  const auto run = [] {
    PieQueue q{15'000, 15'000, 0, 42};
    std::vector<std::uint64_t> delivered;
    Microseconds now = 0;
    std::uint64_t id = 0;
    for (int ms = 0; ms < 1'000; ++ms) {
      now = ms * 1'000;
      q.enqueue(make_packet(kMss, id++), now);
      q.enqueue(make_packet(kMss, id++), now + 400);
      if (const auto p = q.dequeue(now + 800)) {
        delivered.push_back(p->id);
      }
    }
    return delivered;
  };
  EXPECT_EQ(run(), run());
}

TEST(PieQueue, RejectsBadParameters) {
  EXPECT_THROW(PieQueue(0, 15'000), std::invalid_argument);
  EXPECT_THROW(PieQueue(15'000, 0), std::invalid_argument);
}

TEST(MakeQueue, BuildsEveryDiscipline) {
  EXPECT_EQ(make_queue({.discipline = "infinite"})->name(), "infinite");
  EXPECT_EQ(make_queue({.discipline = "droptail", .max_packets = 10})->name(),
            "droptail");
  EXPECT_EQ(make_queue({.discipline = "drophead", .max_packets = 10})->name(),
            "drophead");
  EXPECT_EQ(make_queue({.discipline = "codel"})->name(), "codel");
  EXPECT_EQ(make_queue({.discipline = "pie"})->name(), "pie");
  EXPECT_THROW(make_queue({.discipline = "red"}), std::invalid_argument);
}

TEST(MakeQueue, UnknownDisciplineErrorNamesTheCulpritAndTheChoices) {
  try {
    make_queue({.discipline = "fq_codel"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("fq_codel"), std::string::npos) << message;
    for (const std::string& name : known_queue_disciplines()) {
      EXPECT_NE(message.find(name), std::string::npos) << message;
    }
  }
}

TEST(MakeQueue, BoundLessBoundedSpecsAreRejectedWithClearError) {
  for (const char* discipline : {"droptail", "drophead"}) {
    try {
      make_queue({.discipline = discipline});
      FAIL() << discipline << " spec with no bound must not build";
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find(discipline), std::string::npos) << message;
      EXPECT_NE(message.find("max_packets"), std::string::npos) << message;
    }
  }
}

TEST(MakeQueue, RejectsNonPositiveAqmTimings) {
  EXPECT_THROW(make_queue({.discipline = "codel", .codel_target = 0}),
               std::invalid_argument);
  EXPECT_THROW(make_queue({.discipline = "codel", .codel_interval = -1}),
               std::invalid_argument);
  EXPECT_THROW(make_queue({.discipline = "pie", .pie_target = 0}),
               std::invalid_argument);
  EXPECT_THROW(make_queue({.discipline = "pie", .pie_tupdate = -5}),
               std::invalid_argument);
}

// Conservation property: whatever the discipline, packets out + drops ==
// packets in, and FIFO order among survivors is preserved.
class QueueConservation : public ::testing::TestWithParam<std::string> {};

TEST_P(QueueConservation, InEqualsOutPlusDrops) {
  QueueSpec spec;
  spec.discipline = GetParam();
  spec.max_packets = 16;
  const auto q = make_queue(spec);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    q->enqueue(make_packet(64, static_cast<std::uint64_t>(i)), i);
  }
  std::uint64_t last_id = 0;
  std::size_t out = 0;
  while (const auto p = q->dequeue(n + 1)) {
    if (out > 0) {
      EXPECT_GT(p->id, last_id);  // order preserved
    }
    last_id = p->id;
    ++out;
  }
  EXPECT_EQ(out + q->drops(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, QueueConservation,
                         ::testing::Values("infinite", "droptail", "drophead",
                                           "codel", "pie"));

}  // namespace
}  // namespace mahimahi::net
