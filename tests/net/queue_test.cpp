#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace mahimahi::net {
namespace {

Packet make_packet(std::size_t payload_bytes, std::uint64_t id = 0) {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.tcp.payload = std::string(payload_bytes, 'x');
  p.id = id;
  return p;
}

TEST(InfiniteQueue, FifoAndByteAccounting) {
  InfiniteQueue q;
  q.enqueue(make_packet(100, 1), 0);
  q.enqueue(make_packet(200, 2), 0);
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.byte_count(), 100 + 200 + 2 * kTcpHeaderBytes);
  EXPECT_EQ(q.dequeue(0)->id, 1u);
  EXPECT_EQ(q.dequeue(0)->id, 2u);
  EXPECT_FALSE(q.dequeue(0).has_value());
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_EQ(q.drops(), 0u);
}

TEST(DropTailQueue, DropsArrivalsWhenPacketLimitHit) {
  DropTailQueue q{2, 0};
  q.enqueue(make_packet(10, 1), 0);
  q.enqueue(make_packet(10, 2), 0);
  q.enqueue(make_packet(10, 3), 0);  // dropped
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.dequeue(0)->id, 1u);  // head survives (tail drop)
  EXPECT_EQ(q.dequeue(0)->id, 2u);
}

TEST(DropTailQueue, ByteLimit) {
  DropTailQueue q{0, 2 * kMtuBytes};
  q.enqueue(make_packet(kMss, 1), 0);
  q.enqueue(make_packet(kMss, 2), 0);
  q.enqueue(make_packet(kMss, 3), 0);  // would exceed 2 MTU of bytes
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(DropTailQueue, RequiresABound) {
  EXPECT_THROW(DropTailQueue(0, 0), std::invalid_argument);
}

TEST(DropTailQueue, DrainThenAcceptAgain) {
  DropTailQueue q{1, 0};
  q.enqueue(make_packet(10, 1), 0);
  q.enqueue(make_packet(10, 2), 0);  // dropped
  EXPECT_EQ(q.dequeue(0)->id, 1u);
  q.enqueue(make_packet(10, 3), 0);  // fits now
  EXPECT_EQ(q.dequeue(0)->id, 3u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(DropHeadQueue, EvictsOldestToAdmitNew) {
  DropHeadQueue q{2, 0};
  q.enqueue(make_packet(10, 1), 0);
  q.enqueue(make_packet(10, 2), 0);
  q.enqueue(make_packet(10, 3), 0);  // evicts id 1
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.dequeue(0)->id, 2u);
  EXPECT_EQ(q.dequeue(0)->id, 3u);
}

TEST(DropHeadQueue, OversizedPacketIsDroppedNotLooped) {
  DropHeadQueue q{0, 100};  // byte bound smaller than any MTU packet
  q.enqueue(make_packet(kMss, 1), 0);
  EXPECT_EQ(q.packet_count(), 0u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(CoDelQueue, NoDropsWhenSojournBelowTarget) {
  CoDelQueue q{5'000, 100'000};
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), i * 10);
    // Drain immediately: sojourn ~0.
    EXPECT_TRUE(q.dequeue(i * 10 + 1).has_value());
  }
  EXPECT_EQ(q.drops(), 0u);
}

TEST(CoDelQueue, DropsUnderStandingQueue) {
  CoDelQueue q{5'000, 100'000};
  // Build a standing queue: 500 packets at t=0, drained slowly.
  for (int i = 0; i < 500; ++i) {
    q.enqueue(make_packet(100, static_cast<std::uint64_t>(i)), 0);
  }
  // Drain one packet per 10 ms: sojourn far above 5 ms target.
  Microseconds now = 0;
  std::size_t delivered = 0;
  while (true) {
    now += 10'000;
    const auto p = q.dequeue(now);
    if (!p) {
      break;
    }
    ++delivered;
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_EQ(delivered + q.drops(), 500u);
}

TEST(CoDelQueue, RejectsBadParameters) {
  EXPECT_THROW(CoDelQueue(0, 100'000), std::invalid_argument);
  EXPECT_THROW(CoDelQueue(5'000, 0), std::invalid_argument);
}

TEST(MakeQueue, BuildsEveryDiscipline) {
  EXPECT_EQ(make_queue({.discipline = "infinite"})->name(), "infinite");
  EXPECT_EQ(make_queue({.discipline = "droptail", .max_packets = 10})->name(),
            "droptail");
  EXPECT_EQ(make_queue({.discipline = "drophead", .max_packets = 10})->name(),
            "drophead");
  EXPECT_EQ(make_queue({.discipline = "codel"})->name(), "codel");
  EXPECT_THROW(make_queue({.discipline = "red"}), std::invalid_argument);
}

// Conservation property: whatever the discipline, packets out + drops ==
// packets in, and FIFO order among survivors is preserved.
class QueueConservation : public ::testing::TestWithParam<std::string> {};

TEST_P(QueueConservation, InEqualsOutPlusDrops) {
  QueueSpec spec;
  spec.discipline = GetParam();
  spec.max_packets = 16;
  const auto q = make_queue(spec);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    q->enqueue(make_packet(64, static_cast<std::uint64_t>(i)), i);
  }
  std::uint64_t last_id = 0;
  std::size_t out = 0;
  while (const auto p = q->dequeue(n + 1)) {
    if (out > 0) {
      EXPECT_GT(p->id, last_id);  // order preserved
    }
    last_id = p->id;
    ++out;
  }
  EXPECT_EQ(out + q->drops(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, QueueConservation,
                         ::testing::Values("infinite", "droptail", "drophead",
                                           "codel"));

}  // namespace
}  // namespace mahimahi::net
