#pragma once

// Shared scaffolding for net-layer tests: an EventLoop + Fabric with a
// configurable element chain between client and server sides.

#include <memory>

#include "net/dns.hpp"
#include "net/element.hpp"
#include "net/event_loop.hpp"
#include "net/fabric.hpp"
#include "net/http_session.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "util/time.hpp"

namespace mahimahi::net::testing {

using namespace mahimahi::literals;

struct SimNet {
  EventLoop loop;
  Fabric fabric{loop};

  SimNet() { loop.set_event_limit(50'000'000); }

  /// Append a fixed one-way delay element.
  DelayBox& add_delay(Microseconds delay) {
    auto box = std::make_unique<DelayBox>(loop, delay);
    DelayBox& ref = *box;
    fabric.chain().push_back(std::move(box));
    return ref;
  }

  MeterBox& add_meter() {
    auto box = std::make_unique<MeterBox>();
    MeterBox& ref = *box;
    fabric.chain().push_back(std::move(box));
    return ref;
  }

  LossBox& add_loss(util::Rng rng, double up, double down) {
    auto box = std::make_unique<LossBox>(std::move(rng), up, down);
    LossBox& ref = *box;
    fabric.chain().push_back(std::move(box));
    return ref;
  }

  TraceLink& add_link(trace::PacketTrace up, trace::PacketTrace down,
                      QueueSpec up_q = {}, QueueSpec down_q = {}) {
    auto link = std::make_unique<TraceLink>(loop, std::move(up), std::move(down),
                                            up_q, down_q);
    TraceLink& ref = *link;
    fabric.chain().push_back(std::move(link));
    return ref;
  }
};

}  // namespace mahimahi::net::testing
