// Net-layer fault injectors: link flaps, payload corruption, DNS faults,
// origin crash/stall/brown-out, and the typed TCP close reasons the
// resilience layer keys on. Everything here must be deterministic — the
// injectors are pure functions of (seed, direction, packet index) or of
// the request/query index, never of wall-clock or scheduling order.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "net/dns.hpp"
#include "net/element.hpp"
#include "net/http_session.hpp"
#include "net/mux.hpp"
#include "net/sim_fixture.hpp"
#include "net/tcp.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};
const Address kDnsAddr{Ipv4{10, 0, 0, 53}, kDnsPort};

Packet flap_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.tcp.payload = "probe";
  return p;
}

// --- FlapBox ----------------------------------------------------------------

TEST(FlapBox, DropsOnlyInsideTheDownWindow) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<FlapBox>(loop, /*period=*/100_ms,
                                            /*down=*/30_ms, /*offset=*/10_ms));
  std::vector<std::uint64_t> delivered;
  chain.set_outputs([&](Packet&& p) { delivered.push_back(p.id); },
                    [](Packet&&) {});

  // Window layout: up on [0, 10ms), down on [10ms, 40ms), up on
  // [40ms, 110ms), down on [110ms, 140ms), ...
  loop.schedule_at(5_ms, [&] { chain.send_uplink(flap_packet(1)); });     // up
  loop.schedule_at(15_ms, [&] { chain.send_uplink(flap_packet(2)); });    // down
  loop.schedule_at(39_ms, [&] { chain.send_uplink(flap_packet(3)); });    // down
  loop.schedule_at(40_ms, [&] { chain.send_uplink(flap_packet(4)); });    // up
  loop.schedule_at(111_ms, [&] { chain.send_uplink(flap_packet(5)); });   // down
  loop.schedule_at(150_ms, [&] { chain.send_uplink(flap_packet(6)); });   // up
  loop.run();

  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 4, 6}));
}

TEST(FlapBox, CountsDropsPerDirectionAndReportsLinkState) {
  EventLoop loop;
  FlapBox box{loop, /*period=*/50_ms, /*down=*/20_ms, /*offset=*/0};
  // Down window starts immediately (offset 0).
  EXPECT_TRUE(box.link_down());
  Chain chain;
  auto owned = std::make_unique<FlapBox>(loop, 50_ms, 20_ms, 0);
  FlapBox& flap = *owned;
  chain.push_back(std::move(owned));
  int up_out = 0;
  int down_out = 0;
  chain.set_outputs([&](Packet&&) { ++up_out; }, [&](Packet&&) { ++down_out; });

  chain.send_uplink(flap_packet(1));    // t=0: down
  chain.send_downlink(flap_packet(2));  // t=0: down
  loop.schedule_at(30_ms, [&] {
    EXPECT_FALSE(flap.link_down());
    chain.send_uplink(flap_packet(3));    // up: passes
    chain.send_downlink(flap_packet(4));  // up: passes
  });
  loop.run();

  EXPECT_EQ(flap.dropped(Direction::kUplink), 1u);
  EXPECT_EQ(flap.dropped(Direction::kDownlink), 1u);
  EXPECT_EQ(up_out, 1);
  EXPECT_EQ(down_out, 1);
}

// --- CorruptBox -------------------------------------------------------------

TEST(CorruptBox, RateExtremesPassOrDropEverything) {
  EventLoop loop;
  for (const double rate : {0.0, 1.0}) {
    Chain chain;
    auto owned = std::make_unique<CorruptBox>(/*seed=*/7, rate);
    CorruptBox& box = *owned;
    chain.push_back(std::move(owned));
    int delivered = 0;
    chain.set_outputs([&](Packet&&) { ++delivered; }, [](Packet&&) {});
    for (std::uint64_t i = 0; i < 64; ++i) {
      chain.send_uplink(flap_packet(i));
    }
    EXPECT_EQ(delivered, rate == 0.0 ? 64 : 0);
    EXPECT_EQ(box.corrupted(Direction::kUplink), rate == 0.0 ? 0u : 64u);
    EXPECT_EQ(box.corrupted(Direction::kDownlink), 0u);
  }
}

TEST(CorruptBox, SameSeedCorruptsTheSamePacketIndices) {
  // The corruption decision for packet #i depends only on (seed,
  // direction, i) — two boxes with one seed agree packet by packet, and a
  // different seed picks a different victim set.
  const auto victims = [](std::uint64_t seed) {
    Chain chain;
    chain.push_back(std::make_unique<CorruptBox>(seed, 0.3));
    std::vector<std::uint64_t> survivors;
    chain.set_outputs([&](Packet&& p) { survivors.push_back(p.id); },
                      [](Packet&&) {});
    for (std::uint64_t i = 0; i < 200; ++i) {
      chain.send_uplink(flap_packet(i));
    }
    return survivors;
  };
  EXPECT_EQ(victims(11), victims(11));
  EXPECT_NE(victims(11), victims(12));
  const std::size_t survived = victims(11).size();
  EXPECT_GT(survived, 100u);  // ~140 expected at rate 0.3
  EXPECT_LT(survived, 180u);
}

// --- DNS faults -------------------------------------------------------------

TEST(DnsFaults, FailAnswersNxdomainForKnownNames) {
  SimNet net;
  DnsTable table;
  table.add("www.example.com", Ipv4{93, 184, 216, 34});
  DnsServer server{net.fabric, kDnsAddr, table};
  server.set_fault_hook([](std::uint64_t) { return DnsFault::kFail; });
  DnsClient client{net.fabric, kDnsAddr};

  std::optional<std::optional<Ipv4>> answer;
  client.resolve("www.example.com",
                 [&](std::optional<Ipv4> ip) { answer = ip; });
  net.loop.run();
  ASSERT_TRUE(answer.has_value());  // a reply arrived...
  EXPECT_FALSE(answer->has_value());  // ...but it was NXDOMAIN
  EXPECT_EQ(server.faults_injected(), 1u);
}

TEST(DnsFaults, DroppedQueryIsRecoveredByClientRetry) {
  SimNet net;
  DnsTable table;
  table.add("www.example.com", Ipv4{93, 184, 216, 34});
  DnsServer server{net.fabric, kDnsAddr, table};
  // Swallow only the first query; the client's retransmit recovers.
  server.set_fault_hook([](std::uint64_t query_index) {
    return query_index == 0 ? DnsFault::kDrop : DnsFault::kNone;
  });
  DnsClient client{net.fabric, kDnsAddr, /*query_timeout=*/100_ms,
                   /*max_retries=*/2};

  std::optional<Ipv4> answer;
  Microseconds answered_at = 0;
  client.resolve("www.example.com", [&](std::optional<Ipv4> ip) {
    answer = ip;
    answered_at = net.loop.now();
  });
  net.loop.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(server.faults_injected(), 1u);
  EXPECT_EQ(server.queries_served(), 2u);
  EXPECT_GE(answered_at, 100_ms);  // paid one query timeout
}

TEST(DnsFaults, DropBeyondRetryBudgetFailsTheLookup) {
  SimNet net;
  DnsTable table;
  table.add("www.example.com", Ipv4{93, 184, 216, 34});
  DnsServer server{net.fabric, kDnsAddr, table};
  server.set_fault_hook([](std::uint64_t) { return DnsFault::kDrop; });
  DnsClient client{net.fabric, kDnsAddr, /*query_timeout=*/50_ms,
                   /*max_retries=*/1};

  std::optional<std::optional<Ipv4>> answer;
  client.resolve("www.example.com",
                 [&](std::optional<Ipv4> ip) { answer = ip; });
  net.loop.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_FALSE(answer->has_value());
  EXPECT_EQ(server.faults_injected(), 2u);  // original + one retry
}

// --- Origin faults (HTTP/1.1) -----------------------------------------------

http::Response ok_handler(const http::Request&) {
  return http::make_ok(std::string(20'000, 'b'));
}

TEST(OriginFaults, CrashSendsPartialResponseThenReset) {
  SimNet net;
  net.add_delay(5_ms);
  HttpServer server{net.fabric, kServerAddr, ok_handler};
  server.set_fault_hook([](std::uint64_t request_index) {
    ServerFault fault;
    if (request_index == 0) {
      fault.kind = ServerFault::Kind::kCrash;
      fault.fraction = 0.5;
    }
    return fault;
  });

  std::string error;
  bool got_response = false;
  HttpClientConnection client{net.fabric, kServerAddr,
                              [&](const std::string& reason) { error = reason; }};
  client.fetch(http::make_get("http://10.0.0.1/hero.jpg"),
               [&](http::Response) { got_response = true; });
  net.loop.run();

  EXPECT_FALSE(got_response);
  EXPECT_EQ(error, "connection reset");
  EXPECT_EQ(server.faults_injected(), 1u);
  EXPECT_FALSE(client.alive());
}

TEST(OriginFaults, StallAcceptsTheRequestAndNeverResponds) {
  SimNet net;
  net.add_delay(5_ms);
  HttpServer server{net.fabric, kServerAddr, ok_handler};
  server.set_fault_hook([](std::uint64_t) {
    ServerFault fault;
    fault.kind = ServerFault::Kind::kStall;
    return fault;
  });

  std::string error;
  bool got_response = false;
  HttpClientConnection client{net.fabric, kServerAddr,
                              [&](const std::string& reason) { error = reason; }};
  client.fetch(http::make_get("http://10.0.0.1/spinner.gif"),
               [&](http::Response) { got_response = true; });
  net.loop.run();  // drains: the stalled request leaves nothing scheduled

  EXPECT_FALSE(got_response);
  EXPECT_TRUE(error.empty());  // a stall is silent — only a deadline sees it
  EXPECT_EQ(server.faults_injected(), 1u);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(OriginFaults, ExtraDelayDefersTheResponse) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, ok_handler};
  server.set_fault_hook([](std::uint64_t) {
    ServerFault fault;  // kNone — brown-out latency only
    fault.extra_delay = 80_ms;
    return fault;
  });
  HttpClientConnection client{net.fabric, kServerAddr};
  Microseconds done_at = 0;
  client.fetch(http::make_get("http://10.0.0.1/slow"),
               [&](http::Response r) {
                 EXPECT_EQ(r.status, 200);
                 done_at = net.loop.now();
               });
  net.loop.run();
  EXPECT_GE(done_at, 80_ms);
}

TEST(OriginFaults, OnlyTheFaultedRequestOnAConnectionIsLost) {
  // Request #1 crashes the connection; a fresh connection then fetches the
  // same object fine — exactly the sequence the browser's retry path runs.
  SimNet net;
  net.add_delay(2_ms);
  HttpServer server{net.fabric, kServerAddr, ok_handler};
  server.set_fault_hook([](std::uint64_t request_index) {
    ServerFault fault;
    if (request_index == 1) {
      fault.kind = ServerFault::Kind::kCrash;
    }
    return fault;
  });

  int responses = 0;
  std::string error;
  auto client = std::make_unique<HttpClientConnection>(
      net.fabric, kServerAddr,
      [&](const std::string& reason) { error = reason; });
  client->fetch(http::make_get("http://10.0.0.1/a"),
                [&](http::Response) { ++responses; });
  client->fetch(http::make_get("http://10.0.0.1/b"),
                [&](http::Response) { ++responses; });
  net.loop.run();
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(error, "connection reset");

  HttpClientConnection retry{net.fabric, kServerAddr};
  retry.fetch(http::make_get("http://10.0.0.1/b"),
              [&](http::Response) { ++responses; });
  net.loop.run();
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(server.faults_injected(), 1u);
}

// --- Origin faults (mux) ----------------------------------------------------

TEST(OriginFaults, MuxCrashResetsEveryStreamOnTheConnection) {
  SimNet net;
  net.add_delay(5_ms);
  mux::MuxServer server{net.fabric, kServerAddr, ok_handler};
  server.set_fault_hook([](std::uint64_t request_index) {
    ServerFault fault;
    if (request_index == 2) {  // third stream takes the whole mux down
      fault.kind = ServerFault::Kind::kCrash;
    }
    return fault;
  });

  std::string error;
  int responses = 0;
  mux::MuxClientConnection client{
      net.fabric, kServerAddr,
      [&](const std::string& reason) { error = reason; }};
  for (int i = 0; i < 3; ++i) {
    client.fetch(http::make_get("http://10.0.0.1/s" + std::to_string(i)),
                 [&](http::Response) { ++responses; });
  }
  net.loop.run();

  EXPECT_EQ(error, "connection reset");
  EXPECT_FALSE(client.alive());
  EXPECT_EQ(client.outstanding(), 0u);  // no stream left dangling
  EXPECT_EQ(server.faults_injected(), 1u);
  EXPECT_LT(responses, 3);
}

// --- Typed TCP close reasons ------------------------------------------------

TEST(TcpCloseReason, LabelsAreStable) {
  // The labels are API: the HTTP/mux clients forward them verbatim as
  // error strings, and the browser's retry policy matches on them.
  EXPECT_EQ(to_string(TcpConnection::CloseReason::kNone), "open");
  EXPECT_EQ(to_string(TcpConnection::CloseReason::kNormal), "closed");
  EXPECT_EQ(to_string(TcpConnection::CloseReason::kPeerReset), "peer reset");
  EXPECT_EQ(to_string(TcpConnection::CloseReason::kSynTimeout),
            "connect timeout (SYN retransmit limit)");
  EXPECT_EQ(to_string(TcpConnection::CloseReason::kRetransmitExhausted),
            "retransmit limit exhausted");
  EXPECT_EQ(to_string(TcpConnection::CloseReason::kLocalAbort), "local abort");
}

TEST(TcpCloseReason, SynTimeoutSurfacesThroughHttpClient) {
  SimNet net;
  // No listener bound: SYNs vanish, the handshake gives up, and the typed
  // reason reaches the application as the error string.
  TcpConnection::Config config;
  config.max_syn_retries = 1;
  config.initial_rto = 100_ms;
  std::string error;
  HttpClientConnection client{net.fabric, kServerAddr,
                              [&](const std::string& reason) { error = reason; },
                              config};
  bool got_response = false;
  client.fetch(http::make_get("http://10.0.0.1/x"),
               [&](http::Response) { got_response = true; });
  net.loop.run();
  EXPECT_FALSE(got_response);
  EXPECT_EQ(error, "connect timeout (SYN retransmit limit)");
  EXPECT_FALSE(client.alive());
}

TEST(TcpCloseReason, BlackholeMidTransferExhaustsRetransmits) {
  SimNet net;
  // Link up for the handshake, then down for the rest of the test: the
  // client's in-flight data retransmits until the RTO budget runs out.
  net.fabric.chain().push_back(std::make_unique<FlapBox>(
      net.loop, /*period=*/1000_s, /*down=*/999_s, /*offset=*/50_ms));

  bool accepted = false;
  TcpListener listener{net.fabric, kServerAddr,
                       [&](const std::shared_ptr<TcpConnection>&) {
                         accepted = true;
                         return TcpConnection::Callbacks{};
                       }};

  TcpConnection::Config config;
  config.max_rto_retries = 2;
  config.initial_rto = 100_ms;
  config.min_rto = 100_ms;
  bool reset = false;
  TcpClient client{net.fabric, kServerAddr,
                   {.on_reset = [&] { reset = true; }}, config};
  // Send once the blackhole window has opened.
  net.loop.schedule_at(60_ms, [&] { client.connection().send("doomed"); });
  net.loop.run();

  EXPECT_TRUE(accepted);  // handshake beat the blackhole
  EXPECT_TRUE(reset);
  EXPECT_EQ(client.connection().close_reason(),
            TcpConnection::CloseReason::kRetransmitExhausted);
  EXPECT_EQ(std::string{to_string(client.connection().close_reason())},
            "retransmit limit exhausted");
}

}  // namespace
}  // namespace mahimahi::net
