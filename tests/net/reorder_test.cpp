// ReorderBox and TCP-under-reordering hardening.

#include <gtest/gtest.h>

#include "net/sim_fixture.hpp"
#include "util/random.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

TEST(ReorderBox, ZeroExtraIsTransparent) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<ReorderBox>(loop, util::Rng{1}, 0));
  std::vector<std::uint64_t> order;
  chain.set_outputs([&](Packet&& p) { order.push_back(p.id); }, [](Packet&&) {});
  for (std::uint64_t i = 0; i < 10; ++i) {
    Packet p;
    p.id = i;
    chain.send_uplink(std::move(p));
  }
  loop.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ReorderBox, ActuallyReorders) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<ReorderBox>(loop, util::Rng{7}, 5'000));
  std::vector<std::uint64_t> order;
  chain.set_outputs([&](Packet&& p) { order.push_back(p.id); }, [](Packet&&) {});
  loop.schedule_at(0, [&] {
    for (std::uint64_t i = 0; i < 50; ++i) {
      Packet p;
      p.id = i;
      chain.send_uplink(std::move(p));
    }
  });
  loop.run();
  ASSERT_EQ(order.size(), 50u);  // nothing lost
  bool out_of_order = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);
}

// TCP must deliver bytes exactly once, in order, under any combination of
// reordering and loss. This is the reassembly property sweep.
class TcpReorderSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TcpReorderSweep, ExactlyOnceInOrder) {
  const auto [max_extra_ms, loss] = GetParam();
  SimNet net;
  net.add_delay(5_ms);
  net.fabric.chain().push_back(std::make_unique<ReorderBox>(
      net.loop, util::Rng{1234}, max_extra_ms * 1'000));
  if (loss > 0) {
    net.add_loss(util::Rng{77}, loss, loss);
  }

  std::string received;
  TcpListener listener{
      net.fabric, kServerAddr,
      [&received](const std::shared_ptr<TcpConnection>& conn) {
        TcpConnection::Callbacks cb;
        cb.on_data = [&received](std::string_view b) { received.append(b); };
        // Raw pointer: a shared_ptr captured in the connection's own
        // callbacks would be a reference cycle (leak).
        cb.on_peer_close = [raw = conn.get()] { raw->close(); };
        return cb;
      }};

  std::string payload;
  util::Rng rng{55};
  for (int i = 0; i < 80'000; ++i) {
    payload += static_cast<char>(rng.uniform_int(0, 255));
  }
  TcpClient client{net.fabric, kServerAddr, {}};
  client.connection().send(payload);
  client.connection().close();
  net.loop.run();
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TcpReorderSweep,
    ::testing::Combine(::testing::Values(0, 2, 10, 40),
                       ::testing::Values(0.0, 0.03)));

}  // namespace
}  // namespace mahimahi::net
