// The SPDY-like multiplexed protocol: frame codec, server interleaving,
// concurrent streams, and head-of-line behaviour.

#include "net/mux.hpp"

#include <gtest/gtest.h>

#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace mahimahi::net::mux {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

TEST(FrameCodec, RoundTripAllTypes) {
  for (const auto type :
       {Frame::Type::kRequest, Frame::Type::kData, Frame::Type::kEnd}) {
    Frame frame;
    frame.stream_id = 0xDEADBEEF;
    frame.type = type;
    frame.payload = type == Frame::Type::kEnd ? "" : "payload bytes";
    FrameParser parser;
    parser.push(encode_frame(frame));
    ASSERT_TRUE(parser.has_frame());
    EXPECT_EQ(parser.pop(), frame);
    EXPECT_FALSE(parser.failed());
  }
}

TEST(FrameCodec, ByteAtATimeAndCoalesced) {
  Frame a{1, Frame::Type::kRequest, "GET"};
  Frame b{2, Frame::Type::kData, std::string(1000, 'x')};
  const std::string wire = encode_frame(a) + encode_frame(b);
  // Byte at a time.
  FrameParser slow;
  for (const char c : wire) {
    slow.push(std::string_view{&c, 1});
  }
  ASSERT_TRUE(slow.has_frame());
  EXPECT_EQ(slow.pop(), a);
  ASSERT_TRUE(slow.has_frame());
  EXPECT_EQ(slow.pop(), b);
  // One shot.
  FrameParser fast;
  fast.push(wire);
  EXPECT_EQ(fast.pop(), a);
  EXPECT_EQ(fast.pop(), b);
}

TEST(FrameCodec, RejectsBadTypeAndOversizedFrames) {
  std::string wire = encode_frame(Frame{1, Frame::Type::kData, "x"});
  wire[4] = 99;  // bogus type
  FrameParser parser;
  parser.push(wire);
  EXPECT_TRUE(parser.failed());

  // Oversized declared length.
  std::string huge;
  for (int i = 0; i < 4; ++i) huge += '\0';
  huge += static_cast<char>(Frame::Type::kData);
  huge += "\xFF\xFF\xFF\xFF";
  FrameParser parser2;
  parser2.push(huge);
  EXPECT_TRUE(parser2.failed());
}

struct MuxHarness {
  SimNet net;
  MuxServer server;

  explicit MuxHarness(std::size_t chunk = 16 * 1024,
                      Microseconds think = 0)
      : server{net.fabric, kServerAddr,
               [](const http::Request& request) {
                 if (request.target == "/big") {
                   return http::make_ok(std::string(400'000, 'B'));
                 }
                 return http::make_ok("small:" + request.target, "text/plain");
               },
               think, chunk} {
    net.add_delay(10_ms);
  }
};

TEST(Mux, SingleFetchRoundTrip) {
  MuxHarness h;
  MuxClientConnection client{h.net.fabric, kServerAddr};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://10.0.0.1/a"),
               [&](http::Response r) { got = std::move(r); });
  h.net.loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "small:/a");
}

TEST(Mux, ManyConcurrentStreamsOneConnection) {
  MuxHarness h;
  MuxClientConnection client{h.net.fabric, kServerAddr};
  int responses = 0;
  for (int i = 0; i < 40; ++i) {
    client.fetch(http::make_get("http://10.0.0.1/s" + std::to_string(i)),
                 [&responses, i](http::Response r) {
                   EXPECT_EQ(r.body, "small:/s" + std::to_string(i));
                   ++responses;
                 });
  }
  h.net.loop.run();
  EXPECT_EQ(responses, 40);
  EXPECT_EQ(h.server.total_accepted(), 1u);  // one TCP connection
  EXPECT_EQ(h.server.requests_served(), 40u);
}

TEST(Mux, SmallResponseNotStuckBehindBigOne) {
  // HTTP/1.1 on one connection would serialize: big then small. The mux
  // interleaves chunks, so the small response lands long before the big
  // one finishes on a slow link.
  SimNet net;
  net.add_delay(5_ms);
  net.add_link(trace::constant_rate(10e6, 1_s), trace::constant_rate(2e6, 2_s));
  MuxServer server{net.fabric, kServerAddr,
                   [](const http::Request& request) {
                     if (request.target == "/big") {
                       return http::make_ok(std::string(300'000, 'B'));
                     }
                     return http::make_ok("tiny");
                   }};
  MuxClientConnection client{net.fabric, kServerAddr};
  Microseconds big_done = 0;
  Microseconds small_done = 0;
  client.fetch(http::make_get("http://10.0.0.1/big"),
               [&](http::Response r) {
                 EXPECT_EQ(r.body.size(), 300'000u);
                 big_done = net.loop.now();
               });
  client.fetch(http::make_get("http://10.0.0.1/small"),
               [&](http::Response) { small_done = net.loop.now(); });
  net.loop.run();
  ASSERT_GT(big_done, 0);
  ASSERT_GT(small_done, 0);
  // 300 KB at 2 Mbit/s is ~1.2 s; the small response must arrive in a
  // fraction of that thanks to interleaving.
  EXPECT_LT(small_done, big_done / 2);
}

TEST(Mux, ResponsesSurviveRandomLoss) {
  SimNet net;
  net.add_delay(10_ms);
  net.add_loss(util::Rng{11}, 0.05, 0.05);
  MuxServer server{net.fabric, kServerAddr, [](const http::Request& request) {
                     return http::make_ok("ok:" + request.target);
                   }};
  MuxClientConnection client{net.fabric, kServerAddr};
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    client.fetch(http::make_get("http://10.0.0.1/r" + std::to_string(i)),
                 [&](http::Response r) {
                   EXPECT_EQ(r.status, 200);
                   ++responses;
                 });
  }
  net.loop.run();
  EXPECT_EQ(responses, 20);  // TCP reliability underneath
}

TEST(Mux, ServerThinkTimeDelaysResponse) {
  MuxHarness h{16 * 1024, /*think=*/30_ms};
  MuxClientConnection client{h.net.fabric, kServerAddr};
  Microseconds done = 0;
  client.fetch(http::make_get("http://10.0.0.1/x"),
               [&](http::Response) { done = h.net.loop.now(); });
  h.net.loop.run();
  EXPECT_GE(done, 30_ms + 20_ms);  // think + RTT
}

TEST(Mux, GarbageBytesAbortConnection) {
  SimNet net;
  MuxServer server{net.fabric, kServerAddr, [](const http::Request&) {
                     return http::make_ok("x");
                   }};
  // Raw TCP client sending non-mux bytes.
  bool reset = false;
  TcpClient raw{net.fabric, kServerAddr,
                {.on_reset = [&] { reset = true; }}};
  std::string garbage(64, '\xFF');
  raw.connection().send(garbage);
  net.loop.run();
  EXPECT_TRUE(reset);  // server aborts on frame parse failure
}

}  // namespace
}  // namespace mahimahi::net::mux
