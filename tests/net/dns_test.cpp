#include "net/dns.hpp"

#include <gtest/gtest.h>

#include "net/sim_fixture.hpp"
#include "util/random.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kDnsAddr{Ipv4{10, 0, 0, 53}, kDnsPort};

struct DnsHarness {
  SimNet net;
  DnsTable table;
  std::unique_ptr<DnsServer> server;
  std::unique_ptr<DnsClient> client;

  explicit DnsHarness(Microseconds delay = 0) {
    if (delay > 0) {
      net.add_delay(delay);
    }
    table.add("www.example.com", Ipv4{93, 184, 216, 34});
    table.add("cdn.example.com", Ipv4{93, 184, 216, 35});
    server = std::make_unique<DnsServer>(net.fabric, kDnsAddr, table);
    client = std::make_unique<DnsClient>(net.fabric, kDnsAddr);
  }
};

TEST(DnsTable, LookupIsCaseInsensitive) {
  DnsTable table;
  table.add("WWW.Example.COM", Ipv4{1, 2, 3, 4});
  const auto hit = table.lookup("www.example.com");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Ipv4{1, 2, 3, 4}));
  EXPECT_FALSE(table.lookup("other.com").has_value());
}

TEST(Dns, ResolveThroughDelayTakesOneRtt) {
  DnsHarness h{25_ms};
  std::optional<Ipv4> answer;
  Microseconds answered_at = 0;
  h.client->resolve("www.example.com", [&](std::optional<Ipv4> ip) {
    answer = ip;
    answered_at = h.net.loop.now();
  });
  h.net.loop.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, (Ipv4{93, 184, 216, 34}));
  EXPECT_EQ(answered_at, 50_ms);  // query one way, answer back
}

TEST(Dns, SecondLookupIsCachedAndSynchronous) {
  DnsHarness h{25_ms};
  h.client->resolve("www.example.com", [](std::optional<Ipv4>) {});
  h.net.loop.run();
  bool answered = false;
  h.client->resolve("www.example.com", [&](std::optional<Ipv4> ip) {
    answered = true;
    EXPECT_TRUE(ip.has_value());
  });
  EXPECT_TRUE(answered);  // no event loop turn needed
  EXPECT_EQ(h.client->cache_hits(), 1u);
  EXPECT_EQ(h.client->queries_sent(), 1u);
}

TEST(Dns, ConcurrentLookupsCoalesceIntoOneQuery) {
  DnsHarness h{10_ms};
  int answers = 0;
  for (int i = 0; i < 5; ++i) {
    h.client->resolve("cdn.example.com",
                      [&](std::optional<Ipv4> ip) { answers += ip ? 1 : 0; });
  }
  h.net.loop.run();
  EXPECT_EQ(answers, 5);
  EXPECT_EQ(h.client->queries_sent(), 1u);
  EXPECT_EQ(h.server->queries_served(), 1u);
}

TEST(Dns, UnknownNameYieldsNxdomain) {
  DnsHarness h;
  bool called = false;
  h.client->resolve("nosuch.example.com", [&](std::optional<Ipv4> ip) {
    called = true;
    EXPECT_FALSE(ip.has_value());
  });
  h.net.loop.run();
  EXPECT_TRUE(called);
}

TEST(Dns, RetriesThroughLossyChain) {
  SimNet net;
  net.add_delay(5_ms);
  // Deterministic seed that drops some queries: retry must cover it.
  net.add_loss(util::Rng{5}, 0.5, 0.5);
  DnsTable table;
  table.add("www.example.com", Ipv4{9, 9, 9, 9});
  DnsServer server{net.fabric, kDnsAddr, table};
  DnsClient client{net.fabric, kDnsAddr, /*query_timeout=*/100'000,
                   /*max_retries=*/10};
  std::optional<Ipv4> answer;
  client.resolve("www.example.com",
                 [&](std::optional<Ipv4> ip) { answer = ip; });
  net.loop.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, (Ipv4{9, 9, 9, 9}));
}

TEST(Dns, TimeoutWithoutServerReportsFailure) {
  SimNet net;
  DnsClient client{net.fabric, kDnsAddr, /*query_timeout=*/50'000,
                   /*max_retries=*/2};
  bool failed = false;
  client.resolve("www.example.com", [&](std::optional<Ipv4> ip) {
    failed = !ip.has_value();
  });
  net.loop.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(client.queries_sent(), 3u);  // initial + 2 retries
}

}  // namespace
}  // namespace mahimahi::net
