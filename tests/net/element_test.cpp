#include "net/element.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/event_loop.hpp"
#include "util/random.hpp"

namespace mahimahi::net {
namespace {

Packet make_packet(std::uint64_t id, std::size_t payload = 100) {
  Packet p;
  p.id = id;
  p.tcp.payload = std::string(payload, 'x');
  return p;
}

struct Collector {
  std::vector<std::pair<std::uint64_t, Microseconds>> uplink;
  std::vector<std::pair<std::uint64_t, Microseconds>> downlink;

  NetworkElement::Forward up_sink(EventLoop& loop) {
    return [this, &loop](Packet&& p) { uplink.emplace_back(p.id, loop.now()); };
  }
  NetworkElement::Forward down_sink(EventLoop& loop) {
    return [this, &loop](Packet&& p) { downlink.emplace_back(p.id, loop.now()); };
  }
};

TEST(DelayBox, DelaysExactlyAndPreservesOrder) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<DelayBox>(loop, 30'000));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));

  loop.schedule_at(0, [&] { chain.send_uplink(make_packet(1)); });
  loop.schedule_at(0, [&] { chain.send_uplink(make_packet(2)); });
  loop.schedule_at(5'000, [&] { chain.send_downlink(make_packet(3)); });
  loop.run();

  ASSERT_EQ(sink.uplink.size(), 2u);
  EXPECT_EQ(sink.uplink[0], (std::pair<std::uint64_t, Microseconds>{1, 30'000}));
  EXPECT_EQ(sink.uplink[1], (std::pair<std::uint64_t, Microseconds>{2, 30'000}));
  ASSERT_EQ(sink.downlink.size(), 1u);
  EXPECT_EQ(sink.downlink[0], (std::pair<std::uint64_t, Microseconds>{3, 35'000}));
}

TEST(DelayBox, ZeroDelayIsSynchronous) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<DelayBox>(loop, 0));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  chain.send_uplink(make_packet(7));
  EXPECT_EQ(sink.uplink.size(), 1u);  // no event needed
}

TEST(LossBox, ZeroAndTotalLoss) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<LossBox>(util::Rng{1}, 0.0, 1.0));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  for (int i = 0; i < 50; ++i) {
    chain.send_uplink(make_packet(static_cast<std::uint64_t>(i)));
    chain.send_downlink(make_packet(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(sink.uplink.size(), 50u);    // 0% uplink loss
  EXPECT_EQ(sink.downlink.size(), 0u);   // 100% downlink loss
}

TEST(LossBox, StatisticalRate) {
  EventLoop loop;
  Chain chain;
  auto box = std::make_unique<LossBox>(util::Rng{42}, 0.3, 0.0);
  LossBox& loss = *box;
  chain.push_back(std::move(box));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    chain.send_uplink(make_packet(static_cast<std::uint64_t>(i)));
  }
  const double observed =
      static_cast<double>(loss.dropped(Direction::kUplink)) / n;
  EXPECT_NEAR(observed, 0.3, 0.02);
  EXPECT_EQ(sink.uplink.size() + loss.dropped(Direction::kUplink),
            static_cast<std::size_t>(n));
}

TEST(MeterBox, CountsPerDirection) {
  EventLoop loop;
  Chain chain;
  auto box = std::make_unique<MeterBox>();
  MeterBox& meter = *box;
  chain.push_back(std::move(box));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  chain.send_uplink(make_packet(1, 100));
  chain.send_uplink(make_packet(2, 200));
  chain.send_downlink(make_packet(3, 50));
  EXPECT_EQ(meter.packets(Direction::kUplink), 2u);
  EXPECT_EQ(meter.bytes(Direction::kUplink), 300 + 2 * kTcpHeaderBytes);
  EXPECT_EQ(meter.packets(Direction::kDownlink), 1u);
  EXPECT_EQ(meter.bytes(Direction::kDownlink), 50 + kTcpHeaderBytes);
}

TEST(ProcessingDelayBox, SerializesBackToBackPackets) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<ProcessingDelayBox>(loop, 100));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  // Three packets arrive simultaneously: single-server queue means they
  // exit at 100, 200, 300 us.
  loop.schedule_at(0, [&] {
    chain.send_uplink(make_packet(1));
    chain.send_uplink(make_packet(2));
    chain.send_uplink(make_packet(3));
  });
  loop.run();
  ASSERT_EQ(sink.uplink.size(), 3u);
  EXPECT_EQ(sink.uplink[0].second, 100);
  EXPECT_EQ(sink.uplink[1].second, 200);
  EXPECT_EQ(sink.uplink[2].second, 300);
}

TEST(ProcessingDelayBox, DirectionsDoNotSerializeEachOther) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<ProcessingDelayBox>(loop, 100));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  loop.schedule_at(0, [&] {
    chain.send_uplink(make_packet(1));
    chain.send_downlink(make_packet(2));
  });
  loop.run();
  ASSERT_EQ(sink.uplink.size(), 1u);
  ASSERT_EQ(sink.downlink.size(), 1u);
  EXPECT_EQ(sink.uplink[0].second, 100);
  EXPECT_EQ(sink.downlink[0].second, 100);
}

TEST(Chain, EmptyChainForwardsDirectly) {
  EventLoop loop;
  Chain chain;
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  chain.send_uplink(make_packet(1));
  chain.send_downlink(make_packet(2));
  EXPECT_EQ(sink.uplink.size(), 1u);
  EXPECT_EQ(sink.downlink.size(), 1u);
}

TEST(Chain, DelaysCompose) {
  EventLoop loop;
  Chain chain;
  chain.push_back(std::make_unique<DelayBox>(loop, 10'000));
  chain.push_back(std::make_unique<DelayBox>(loop, 5'000));
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  loop.schedule_at(0, [&] { chain.send_uplink(make_packet(1)); });
  loop.schedule_at(0, [&] { chain.send_downlink(make_packet(2)); });
  loop.run();
  ASSERT_EQ(sink.uplink.size(), 1u);
  EXPECT_EQ(sink.uplink[0].second, 15'000);  // both delays, uplink direction
  ASSERT_EQ(sink.downlink.size(), 1u);
  EXPECT_EQ(sink.downlink[0].second, 15'000);  // and downlink direction
}

TEST(Chain, ElementsAddedAfterOutputsStillWire) {
  EventLoop loop;
  Chain chain;
  Collector sink;
  chain.set_outputs(sink.up_sink(loop), sink.down_sink(loop));
  chain.push_back(std::make_unique<PassthroughElement>());
  chain.push_back(std::make_unique<PassthroughElement>());
  chain.send_uplink(make_packet(9));
  ASSERT_EQ(sink.uplink.size(), 1u);
  EXPECT_EQ(sink.uplink[0].first, 9u);
}

}  // namespace
}  // namespace mahimahi::net
