// Pluggable congestion control at the transport level: every registered
// controller must complete real transfers over the simulated fabric, the
// delay-based/rate-based controllers must keep bottleneck queues shorter
// than loss-based ones on a buffered link, and BBR's pacing must be
// deterministic (the 1-vs-N-thread byte-identity contract extends to
// paced send paths).

#include <gtest/gtest.h>

#include "cc/bbr_lite.hpp"
#include "cc/registry.hpp"
#include "net/link_log.hpp"
#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

struct SinkServer {
  std::string received;
  std::shared_ptr<TcpConnection> connection;

  TcpListener::AcceptHandler handler() {
    return [this](const std::shared_ptr<TcpConnection>& conn) {
      connection = conn;
      TcpConnection::Callbacks cb;
      cb.on_data = [this](std::string_view b) { received.append(b); };
      cb.on_peer_close = [raw = conn.get()] { raw->close(); };
      return cb;
    };
  }
};

struct TransferOutcome {
  Microseconds completed_at{0};
  std::uint64_t segments_sent{0};
  std::uint64_t retransmissions{0};
  double queue_delay_p95_ms{0};
};

/// One bulk transfer under `controller` over a 8 Mbit/s link with a
/// deep (unbounded) buffer and 20 ms one-way delay; the link log yields
/// the queueing-delay distribution the controller induced.
TransferOutcome bulk_transfer(const std::string& controller,
                              std::size_t bytes = 400 * kMss,
                              double loss = 0.0) {
  SimNet net;
  net.add_delay(20_ms);
  TraceLink& link = net.add_link(trace::constant_rate(8e6, 60_s),
                                 trace::constant_rate(8e6, 60_s));
  link.enable_logging();
  if (loss > 0) {
    net.add_loss(util::Rng{7}, loss, loss);
  }

  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpConnection::Config config;
  config.congestion_control = controller;
  TcpClient client{net.fabric, kServerAddr, {}, config};
  client.connection().send(std::string(bytes, 'x'));
  client.connection().close();
  net.loop.run();

  EXPECT_EQ(server.received.size(), bytes) << controller;
  TransferOutcome outcome;
  outcome.completed_at = net.loop.now();
  outcome.segments_sent = client.connection().segments_sent();
  outcome.retransmissions = client.connection().retransmissions();
  outcome.queue_delay_p95_ms =
      summarize_link_log(link.log(Direction::kUplink)).delay_p95_ms;
  return outcome;
}

TEST(TcpCc, EveryRegisteredControllerCompletesCleanTransfers) {
  for (const std::string& name : cc::registered_controllers()) {
    const TransferOutcome outcome = bulk_transfer(name);
    EXPECT_GT(outcome.completed_at, 0) << name;
    EXPECT_GE(outcome.segments_sent, 400u) << name;
  }
}

TEST(TcpCc, EveryRegisteredControllerSurvivesALossyPath) {
  for (const std::string& name : cc::registered_controllers()) {
    const TransferOutcome outcome =
        bulk_transfer(name, 200 * kMss, /*loss=*/0.02);
    EXPECT_GT(outcome.retransmissions, 0u) << name;
  }
}

TEST(TcpCc, DelayAndRateBasedControllersKeepTheQueueShort) {
  // On a deep-buffered link, Reno slow-starts past the BDP and parks a
  // standing queue; Vegas backs off on the delay signal and BBR paces at
  // the estimated bottleneck rate, so both should see far less queueing.
  const double reno_p95 = bulk_transfer("reno").queue_delay_p95_ms;
  const double vegas_p95 = bulk_transfer("vegas").queue_delay_p95_ms;
  const double bbr_p95 = bulk_transfer("bbr").queue_delay_p95_ms;
  EXPECT_LT(vegas_p95, reno_p95 * 0.5)
      << "vegas " << vegas_p95 << " ms vs reno " << reno_p95 << " ms";
  EXPECT_LT(bbr_p95, reno_p95 * 0.5)
      << "bbr " << bbr_p95 << " ms vs reno " << reno_p95 << " ms";
}

TEST(TcpCc, PacedSendPathIsDeterministic) {
  // Two identical BBR runs must match event-for-event: pacing timers are
  // driven purely by simulated time and controller state.
  const TransferOutcome first = bulk_transfer("bbr", 300 * kMss, 0.01);
  const TransferOutcome second = bulk_transfer("bbr", 300 * kMss, 0.01);
  EXPECT_EQ(first.completed_at, second.completed_at);
  EXPECT_EQ(first.segments_sent, second.segments_sent);
  EXPECT_EQ(first.retransmissions, second.retransmissions);
  EXPECT_DOUBLE_EQ(first.queue_delay_p95_ms, second.queue_delay_p95_ms);
}

TEST(TcpCc, DefaultConfigStillRunsReno) {
  SimNet net;
  net.add_delay(5_ms);
  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpClient client{net.fabric, kServerAddr, {}};
  EXPECT_EQ(client.connection().congestion().name(), "reno");
  EXPECT_DOUBLE_EQ(client.connection().congestion().pacing_rate(), 0.0);
}

TEST(TcpCc, UnknownControllerNameThrowsAtConstruction) {
  SimNet net;
  TcpConnection::Config config;
  config.congestion_control = "no-such-cc";
  EXPECT_THROW((TcpClient{net.fabric, kServerAddr, {}, config}),
               std::invalid_argument);
}

TEST(TcpCc, BbrConnectionReportsPacingAndPhase) {
  SimNet net;
  net.add_delay(20_ms);
  net.add_link(trace::constant_rate(8e6, 60_s), trace::constant_rate(8e6, 60_s));
  SinkServer server;
  TcpListener listener{net.fabric, kServerAddr, server.handler()};
  TcpConnection::Config config;
  config.congestion_control = "bbr";
  TcpClient client{net.fabric, kServerAddr, {}, config};
  client.connection().send(std::string(500 * kMss, 'x'));
  net.loop.run();
  ASSERT_EQ(server.received.size(), 500 * kMss);

  const auto& controller =
      dynamic_cast<const cc::BbrLite&>(client.connection().congestion());
  // A 500-segment transfer is long enough to fill the pipe and settle
  // into steady-state probing; the bandwidth estimate should be within
  // ~2x of the true 8 Mbit/s = 1 MB/s bottleneck.
  EXPECT_EQ(controller.phase(), cc::BbrLite::Phase::kProbeBw);
  EXPECT_GT(controller.bandwidth_estimate(), 0.4e6);
  EXPECT_LT(controller.bandwidth_estimate(), 2.2e6);
}

}  // namespace
}  // namespace mahimahi::net
