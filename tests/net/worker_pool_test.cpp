// HttpServer prefork worker-pool semantics: connection-held workers,
// bounded spawn rate, FIFO granting — the mechanism behind the paper's
// single-server replay penalty.

#include <gtest/gtest.h>

#include "net/http_session.hpp"
#include "net/sim_fixture.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

http::Response tiny_handler(const http::Request&) {
  return http::make_ok("ok", "text/plain");
}

struct PoolHarness {
  SimNet net;
  HttpServer server;

  explicit PoolHarness(const WorkerPool& pool)
      : server{net.fabric, kServerAddr, tiny_handler} {
    server.set_worker_pool(pool);
  }

  /// Open `n` connections at t=0, each sending one request; returns the
  /// response completion time of each, in request order.
  std::vector<Microseconds> run_concurrent(int n) {
    std::vector<std::unique_ptr<HttpClientConnection>> clients;
    std::vector<Microseconds> done(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      clients.push_back(
          std::make_unique<HttpClientConnection>(net.fabric, kServerAddr));
      clients.back()->fetch(
          http::make_get("http://10.0.0.1/obj" + std::to_string(i)),
          [this, &done, i](http::Response r) {
            EXPECT_EQ(r.status, 200);
            done[static_cast<std::size_t>(i)] = net.loop.now();
          });
    }
    net.loop.run();
    return done;
  }
};

TEST(WorkerPool, DefaultPoolNeverStarves) {
  PoolHarness h{WorkerPool{}};
  const auto done = h.run_concurrent(50);
  for (const auto t : done) {
    ASSERT_GE(t, 0);
    EXPECT_LT(t, 10_ms);  // no spawn waits
  }
  EXPECT_EQ(h.server.worker_waits(), 0u);
}

TEST(WorkerPool, ConnectionsBeyondInitialWorkersWait) {
  PoolHarness h{WorkerPool{.initial_workers = 2,
                           .max_workers = 64,
                           .spawn_interval = 10'000}};
  const auto done = h.run_concurrent(6);
  // First two served immediately; each further connection waits one more
  // spawn interval (workers are held by live keep-alive connections).
  EXPECT_LT(done[0], 5_ms);
  EXPECT_LT(done[1], 5_ms);
  for (int i = 2; i < 6; ++i) {
    EXPECT_GE(done[static_cast<std::size_t>(i)],
              (i - 1) * 10'000)  // spawned one-by-one
        << "conn " << i;
  }
  EXPECT_EQ(h.server.worker_waits(), 4u);
}

TEST(WorkerPool, GrantingIsFifo) {
  PoolHarness h{WorkerPool{.initial_workers = 1,
                           .max_workers = 64,
                           .spawn_interval = 5'000}};
  const auto done = h.run_concurrent(5);
  for (int i = 1; i < 5; ++i) {
    EXPECT_GE(done[static_cast<std::size_t>(i)],
              done[static_cast<std::size_t>(i - 1)]);
  }
}

TEST(WorkerPool, ClosedConnectionReleasesWorkerImmediately) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, [](const http::Request&) {
                      http::Response r = http::make_ok("bye");
                      r.headers.add("Connection", "close");
                      return r;
                    }};
  server.set_worker_pool(WorkerPool{.initial_workers = 1,
                                    .max_workers = 1,  // no spawning at all
                                    .spawn_interval = 1'000'000});
  // Sequential connections: each closes after its response, freeing the
  // single worker for the next. All must complete despite max_workers=1.
  int responses = 0;
  std::vector<std::unique_ptr<HttpClientConnection>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(
        std::make_unique<HttpClientConnection>(net.fabric, kServerAddr));
    clients.back()->fetch(http::make_get("http://10.0.0.1/x"),
                          [&](http::Response) { ++responses; });
  }
  net.loop.run();
  EXPECT_EQ(responses, 4);
  // The pool never grew, so later connections must have waited.
  EXPECT_GE(server.worker_waits(), 3u);
}

TEST(WorkerPool, MaxWorkersBoundsPoolGrowth) {
  PoolHarness h{WorkerPool{.initial_workers = 1,
                           .max_workers = 2,
                           .spawn_interval = 1'000}};
  // Two keep-alive connections hold both workers forever; a third would
  // starve, except our client closes... it does not close, so the third
  // request is the one that never completes. Use run_until to bound.
  std::vector<std::unique_ptr<HttpClientConnection>> clients;
  int responses = 0;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(
        std::make_unique<HttpClientConnection>(h.net.fabric, kServerAddr));
    clients.back()->fetch(http::make_get("http://10.0.0.1/x"),
                          [&](http::Response) { ++responses; });
  }
  h.net.loop.run_until(2_s);
  EXPECT_EQ(responses, 2);  // the third waits forever (pool capped)
}

TEST(WorkerPool, RequestsBufferWhileWaiting) {
  // A waiting connection's requests are answered once granted, in order.
  PoolHarness h{WorkerPool{.initial_workers = 1,
                           .max_workers = 8,
                           .spawn_interval = 20'000}};
  HttpClientConnection holder{h.net.fabric, kServerAddr};
  holder.fetch(http::make_get("http://10.0.0.1/hold"), [](http::Response) {});

  HttpClientConnection waiter{h.net.fabric, kServerAddr};
  std::vector<std::string> bodies;
  for (int i = 0; i < 3; ++i) {
    waiter.fetch(http::make_get("http://10.0.0.1/w" + std::to_string(i)),
                 [&](http::Response r) { bodies.push_back(std::move(r.body)); });
  }
  h.net.loop.run();
  ASSERT_EQ(bodies.size(), 3u);
}

}  // namespace
}  // namespace mahimahi::net
