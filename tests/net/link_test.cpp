#include "net/link.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace mahimahi::net {
namespace {

using namespace mahimahi::literals;

Packet make_packet(std::uint64_t id, std::size_t payload) {
  Packet p;
  p.id = id;
  p.tcp.payload = std::string(payload, 'x');
  return p;
}

struct LinkHarness {
  EventLoop loop;
  std::vector<std::pair<std::uint64_t, Microseconds>> delivered;
  std::unique_ptr<LinkQueue> link;

  explicit LinkHarness(trace::PacketTrace trace,
                       std::unique_ptr<PacketQueue> queue =
                           std::make_unique<InfiniteQueue>()) {
    link = std::make_unique<LinkQueue>(
        loop, std::move(trace), std::move(queue),
        [this](Packet&& p) { delivered.emplace_back(p.id, loop.now()); });
  }
};

TEST(LinkQueue, PacketWaitsForNextOpportunity) {
  // Opportunities at 10, 20, 30 ms.
  LinkHarness h{trace::PacketTrace{{10_ms, 20_ms, 30_ms}}};
  h.loop.schedule_at(1_ms, [&] { h.link->accept(make_packet(1, 100)); });
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].second, 10_ms);
}

TEST(LinkQueue, MissedOpportunitiesAreNotBanked) {
  // Opportunities at 10 and 20 ms pass unused; a packet arriving at 25 ms
  // must wait for the next lap (trace period 20 ms -> opportunity at 30 ms).
  LinkHarness h{trace::PacketTrace{{10_ms, 20_ms}}};
  h.loop.schedule_at(25_ms, [&] { h.link->accept(make_packet(1, 100)); });
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].second, 30_ms);
}

TEST(LinkQueue, BackToBackPacketsUseConsecutiveOpportunities) {
  LinkHarness h{trace::PacketTrace{{10_ms, 20_ms, 30_ms, 40_ms}}};
  h.loop.schedule_at(0, [&] {
    h.link->accept(make_packet(1, 100));
    h.link->accept(make_packet(2, 100));
    h.link->accept(make_packet(3, 100));
  });
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), 3u);
  EXPECT_EQ(h.delivered[0].second, 10_ms);
  EXPECT_EQ(h.delivered[1].second, 20_ms);
  EXPECT_EQ(h.delivered[2].second, 30_ms);
}

TEST(LinkQueue, TraceRepeatsWithPeriodShift) {
  // Period = 20 ms; opportunities at 10, 20, then (lap 2) 30, 40, ...
  LinkHarness h{trace::PacketTrace{{10_ms, 20_ms}}};
  for (int i = 0; i < 4; ++i) {
    h.loop.schedule_at(0, [&h, i] { h.link->accept(make_packet(
        static_cast<std::uint64_t>(i), 100)); });
  }
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), 4u);
  EXPECT_EQ(h.delivered[0].second, 10_ms);
  EXPECT_EQ(h.delivered[1].second, 20_ms);
  EXPECT_EQ(h.delivered[2].second, 30_ms);
  EXPECT_EQ(h.delivered[3].second, 40_ms);
}

TEST(LinkQueue, MultipleOpportunitiesAtSameTimestamp) {
  // Two opportunities at 10 ms deliver two packets at once.
  LinkHarness h{trace::PacketTrace{{10_ms, 10_ms, 20_ms}}};
  h.loop.schedule_at(0, [&] {
    h.link->accept(make_packet(1, 100));
    h.link->accept(make_packet(2, 100));
  });
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].second, 10_ms);
  EXPECT_EQ(h.delivered[1].second, 10_ms);
}

TEST(LinkQueue, ThroughputMatchesTraceRate) {
  // 8 Mbit/s constant trace: 1500-byte packets leave every 1.5 ms.
  LinkHarness h{trace::constant_rate(8e6, 1_s)};
  const int n = 100;
  h.loop.schedule_at(0, [&] {
    for (int i = 0; i < n; ++i) {
      h.link->accept(make_packet(static_cast<std::uint64_t>(i),
                                 kMss));  // MTU-sized on the wire
    }
  });
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), static_cast<std::size_t>(n));
  const Microseconds span = h.delivered.back().second - h.delivered.front().second;
  const double achieved_bps =
      static_cast<double>((n - 1) * kMtuBytes * 8) / (static_cast<double>(span) / 1e6);
  EXPECT_NEAR(achieved_bps, 8e6, 8e6 * 0.02);
}

TEST(LinkQueue, SmallPacketsStillConsumeOneOpportunityEach) {
  // mahimahi delivers at most one packet per opportunity, however small.
  LinkHarness h{trace::PacketTrace{{10_ms, 20_ms, 30_ms}}};
  h.loop.schedule_at(0, [&] {
    h.link->accept(make_packet(1, 1));
    h.link->accept(make_packet(2, 1));
  });
  h.loop.run();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].second, 10_ms);
  EXPECT_EQ(h.delivered[1].second, 20_ms);
}

TEST(LinkQueue, DropTailDropsWhenSaturated) {
  LinkHarness h{trace::PacketTrace{{100_ms, 200_ms}},
                std::make_unique<DropTailQueue>(2, 0)};
  h.loop.schedule_at(0, [&] {
    for (int i = 0; i < 5; ++i) {
      h.link->accept(make_packet(static_cast<std::uint64_t>(i), 100));
    }
  });
  h.loop.run_until(1_s);
  EXPECT_EQ(h.link->queue().drops(), 3u);
}

TEST(TraceLink, DirectionsAreIndependent) {
  EventLoop loop;
  // Uplink: opportunity every 10 ms. Downlink: every 1 ms (10x faster).
  TraceLink link{loop, trace::PacketTrace{{10_ms}},
                 trace::constant_rate(12e6, 100_ms)};
  std::vector<Microseconds> up_times, down_times;
  link.set_forward(Direction::kUplink,
                   [&](Packet&&) { up_times.push_back(loop.now()); });
  link.set_forward(Direction::kDownlink,
                   [&](Packet&&) { down_times.push_back(loop.now()); });
  loop.schedule_at(0, [&] {
    for (int i = 0; i < 5; ++i) {
      link.process(make_packet(static_cast<std::uint64_t>(i), kMss),
                   Direction::kUplink);
      link.process(make_packet(static_cast<std::uint64_t>(100 + i), kMss),
                   Direction::kDownlink);
    }
  });
  loop.run();
  ASSERT_EQ(up_times.size(), 5u);
  ASSERT_EQ(down_times.size(), 5u);
  EXPECT_GT(up_times.back(), down_times.back());  // uplink is the slow one
}

TEST(LinkQueue, CountersTrackDeliveries) {
  LinkHarness h{trace::PacketTrace{{10_ms, 20_ms}}};
  h.loop.schedule_at(0, [&] { h.link->accept(make_packet(1, 500)); });
  h.loop.run();
  EXPECT_EQ(h.link->delivered_packets(), 1u);
  EXPECT_EQ(h.link->delivered_bytes(), 500 + kTcpHeaderBytes);
}

}  // namespace
}  // namespace mahimahi::net
