// Failure injection across the stack: hostile inputs and hostile networks
// must degrade loudly and gracefully, never hang or corrupt.

#include <gtest/gtest.h>

#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"
#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"

namespace mahimahi::core {
namespace {

using net::testing::SimNet;
using namespace mahimahi::literals;

corpus::SiteSpec tiny_spec() {
  corpus::SiteSpec spec;
  spec.name = "fail";
  spec.seed = 23;
  spec.server_count = 4;
  spec.object_count = 15;
  return spec;
}

SessionConfig quick_config() {
  SessionConfig config;
  config.seed = 31;
  config.browser.per_object_overhead = 500;
  config.browser.final_layout_cost = 1'000;
  config.browser.stall_timeout = 5'000'000;  // fail fast in tests
  return config;
}

record::RecordStore recorded_site(const corpus::GeneratedSite& site) {
  RecordSession recorder{site, corpus::LiveWebConfig{}, quick_config()};
  return recorder.record();
}

TEST(FailureInjection, TotalUplinkLossStallsButTerminates) {
  const auto site = corpus::generate_site(tiny_spec());
  const auto store = recorded_site(site);
  auto config = quick_config();
  config.shells = {LossShellSpec{1.0, 0.0}};  // nothing gets out
  ReplaySession session{store, config};
  const auto result = session.load_once(site.primary_url(), 0);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.objects_loaded, 0u);
  EXPECT_FALSE(result.errors.empty());
}

TEST(FailureInjection, HeavyBidirectionalLossEventuallySucceeds) {
  const auto site = corpus::generate_site(tiny_spec());
  const auto store = recorded_site(site);
  auto config = quick_config();
  config.browser.stall_timeout = 60'000'000;
  config.shells = {DelayShellSpec{5_ms}, LossShellSpec{0.25, 0.25}};
  ReplaySession session{store, config};
  const auto result = session.load_once(site.primary_url(), 0);
  EXPECT_TRUE(result.success)
      << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.objects_loaded, site.objects.size());
}

TEST(FailureInjection, IntermittentLinkDeliversEventually) {
  // mm-onoff style: 200 ms on, 800 ms off. TCP rides through the gaps.
  const auto site = corpus::generate_site(tiny_spec());
  const auto store = recorded_site(site);
  auto config = quick_config();
  config.browser.stall_timeout = 120'000'000;
  LinkShellSpec link;
  link.uplink = std::make_shared<const trace::PacketTrace>(
      trace::on_off(10e6, 5_s, 200_ms, 800_ms));
  link.downlink = link.uplink;
  config.shells = {link};
  ReplaySession session{store, config};
  const auto result = session.load_once(site.primary_url(), 0);
  EXPECT_TRUE(result.success);
  // An 80%-off link must stretch the load well past the bare time.
  EXPECT_GT(result.page_load_time, 1_s);
}

TEST(FailureInjection, EmptyStoreYieldsCleanFailure) {
  const record::RecordStore empty;
  ReplaySession session{empty, quick_config()};
  const auto result = session.load_once("http://www.fail.test/", 0);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.objects_loaded, 0u);
}

TEST(FailureInjection, PartialStoreReportsMissingObjects) {
  const auto site = corpus::generate_site(tiny_spec());
  const auto full = recorded_site(site);
  // Keep only the first half of the exchanges (truncated recording).
  record::RecordStore half;
  for (std::size_t i = 0; i < full.size() / 2; ++i) {
    half.add(full.exchanges()[i]);
  }
  ReplaySession session{half, quick_config()};
  const auto result = session.load_once(site.primary_url(), 0);
  EXPECT_FALSE(result.success);
  EXPECT_GT(result.objects_loaded, 0u);
  EXPECT_GT(result.objects_failed, 0u);
  // Failures are 404s / DNS misses, not hangs: loaded+failed covers all
  // *discovered* objects (undiscovered children of missing parents aside).
  EXPECT_LE(result.objects_loaded + result.objects_failed,
            site.objects.size());
}

TEST(FailureInjection, ReplayHealsCorruptStoredFraming) {
  // A stored response whose Content-Length lies about the body size would
  // wedge a keep-alive connection if replayed verbatim. The replay server
  // recomputes framing from the stored body, so the page still loads and
  // the delivered bytes match the stored ones.
  record::RecordStore store;
  {
    record::RecordedExchange root;
    root.request = http::make_get("http://www.fail.test/");
    root.response = http::make_ok(
        "<html><img src=\"/good.jpg\"><img src=\"/bad.jpg\"></html>");
    root.server_address = net::Address{net::Ipv4{10, 5, 0, 1}, 80};
    store.add(root);

    record::RecordedExchange good;
    good.request = http::make_get("http://www.fail.test/good.jpg");
    good.response = http::make_ok(std::string(500, 'g'), "image/jpeg");
    good.server_address = net::Address{net::Ipv4{10, 5, 0, 1}, 80};
    store.add(good);

    record::RecordedExchange bad;
    bad.request = http::make_get("http://www.fail.test/bad.jpg");
    bad.response = http::make_ok(std::string(500, 'b'), "image/jpeg");
    // Framing lie: claims more bytes than the stored body has.
    bad.response.headers.set("Content-Length", "9999");
    bad.server_address = net::Address{net::Ipv4{10, 5, 0, 1}, 80};
    store.add(bad);
  }
  ReplaySession session{store, quick_config()};
  const auto result = session.load_once("http://www.fail.test/", 0);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, 3u);
  EXPECT_EQ(result.objects_failed, 0u);
}

TEST(FailureInjection, ZeroObjectPageLoadsNothingGracefully) {
  record::RecordStore store;
  record::RecordedExchange root;
  root.request = http::make_get("http://www.fail.test/");
  root.response = http::make_ok("<html>empty</html>");
  root.server_address = net::Address{net::Ipv4{10, 5, 0, 1}, 80};
  store.add(root);
  ReplaySession session{store, quick_config()};
  const auto result = session.load_once("http://www.fail.test/", 0);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, 1u);
}

}  // namespace
}  // namespace mahimahi::core
