// Full-pipeline integration tests: generate a site, host it on the
// simulated live web, record it through RecordShell's proxy, replay it
// under shells, and measure page loads — the complete mahimahi workflow.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/sessions.hpp"
#include "corpus/alexa.hpp"

namespace mahimahi::core {
namespace {

using namespace mahimahi::literals;

corpus::SiteSpec test_site_spec() {
  corpus::SiteSpec spec;
  spec.name = "e2e";
  spec.seed = 1234;
  spec.server_count = 6;
  spec.object_count = 30;
  return spec;
}

SessionConfig fast_config(std::uint64_t seed = 1) {
  SessionConfig config;
  config.seed = seed;
  // Small compute constants keep integration tests quick.
  config.browser.per_object_overhead = 500;
  config.browser.final_layout_cost = 2'000;
  return config;
}

record::RecordStore record_test_site(const corpus::GeneratedSite& site) {
  RecordSession session{site, corpus::LiveWebConfig{}, fast_config()};
  return session.record();
}

TEST(EndToEnd, RecordingCapturesWholeSite) {
  const auto site = corpus::generate_site(test_site_spec());
  web::PageLoadResult live_result;
  RecordSession session{site, corpus::LiveWebConfig{}, fast_config()};
  const auto store = session.record(&live_result);

  EXPECT_TRUE(live_result.success);
  EXPECT_EQ(live_result.objects_loaded, site.objects.size());
  // One recorded exchange per object, one origin per hostname.
  EXPECT_EQ(store.size(), site.objects.size());
  EXPECT_EQ(store.distinct_servers().size(), site.hostnames.size());
}

TEST(EndToEnd, ReplayServesEveryRecordedObject) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  ReplaySession replay{store, fast_config()};
  const auto result = replay.load_once(site.primary_url());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, site.objects.size());
  EXPECT_EQ(result.objects_failed, 0u);
  EXPECT_EQ(result.origins_contacted, site.hostnames.size());
}

TEST(EndToEnd, ReplayIsDeterministicGivenSeed) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  ReplaySession a{store, fast_config(77)};
  ReplaySession b{store, fast_config(77)};
  EXPECT_EQ(a.load_once(site.primary_url(), 3).page_load_time,
            b.load_once(site.primary_url(), 3).page_load_time);
  // Different load index => different jitter draws.
  EXPECT_NE(a.load_once(site.primary_url(), 0).page_load_time,
            a.load_once(site.primary_url(), 1).page_load_time);
}

TEST(EndToEnd, StoreSurvivesDiskRoundTrip) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);
  const auto dir = std::filesystem::temp_directory_path() / "mahi_e2e_site";
  std::filesystem::remove_all(dir);
  store.save(dir);
  const auto loaded = record::RecordStore::load(dir);
  std::filesystem::remove_all(dir);

  ReplaySession replay{loaded, fast_config()};
  const auto result = replay.load_once(site.primary_url());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, site.objects.size());
}

TEST(EndToEnd, DelayShellIncreasesPlt) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  ReplaySession bare{store, fast_config()};
  auto delayed_config = fast_config();
  delayed_config.shells = {DelayShellSpec{50_ms}};
  ReplaySession delayed{store, delayed_config};

  const auto bare_plt = bare.load_once(site.primary_url()).page_load_time;
  const auto delayed_plt = delayed.load_once(site.primary_url()).page_load_time;
  // 50 ms each way on every round trip: substantially slower.
  EXPECT_GT(delayed_plt, bare_plt + 100_ms);
}

TEST(EndToEnd, LinkShellThrottlesPlt) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  auto fast = fast_config();
  fast.shells = {DelayShellSpec{10_ms},
                 LinkShellSpec::constant_rate_mbps(50, 50)};
  auto slow = fast_config();
  slow.shells = {DelayShellSpec{10_ms},
                 LinkShellSpec::constant_rate_mbps(50, 1)};

  ReplaySession fast_session{store, fast};
  ReplaySession slow_session{store, slow};
  const auto fast_plt =
      fast_session.load_once(site.primary_url()).page_load_time;
  const auto slow_plt =
      slow_session.load_once(site.primary_url()).page_load_time;
  EXPECT_GT(slow_plt, fast_plt * 2);
}

TEST(EndToEnd, SingleServerModeStillLoadsEverything) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  ReplaySession::Options options;
  options.single_server = true;
  ReplaySession session{store, fast_config(), options};
  const auto result = session.load_once(site.primary_url());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, site.objects.size());
  // Browser pools are per hostname, so the page still *names* six origins;
  // the collapse happens underneath (every name resolves to one server).
  EXPECT_EQ(result.origins_contacted, site.hostnames.size());
}

TEST(EndToEnd, MultiOriginBeatsSingleServerUnderBandwidth) {
  // The paper's core claim (Table 2): with ample bandwidth and moderate
  // RTT, collapsing a multi-origin site onto one server inflates PLT.
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  auto config = fast_config();
  config.shells = {DelayShellSpec{30_ms},
                   LinkShellSpec::constant_rate_mbps(14, 14)};
  ReplaySession multi{store, config};
  ReplaySession::Options single_options;
  single_options.single_server = true;
  ReplaySession single{store, config, single_options};

  const auto multi_plt = multi.load_once(site.primary_url()).page_load_time;
  const auto single_plt = single.load_once(site.primary_url()).page_load_time;
  EXPECT_GT(single_plt, multi_plt);
}

TEST(EndToEnd, LiveWebSessionMeasuresActualWeb) {
  const auto site = corpus::generate_site(test_site_spec());
  LiveWebSession live{site, corpus::LiveWebConfig{}, fast_config()};
  const auto result = live.load_once(0);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, site.objects.size());
  EXPECT_GT(live.last_primary_rtt(), 0);
  // Weather varies across loads.
  const auto second = live.load_once(1);
  EXPECT_NE(result.page_load_time, second.page_load_time);
}

TEST(EndToEnd, ConcurrentSessionsAreIsolated) {
  // Two sessions with different shells measured interleaved must produce
  // exactly what they produce run back-to-back (isolation property).
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  auto slow_config = fast_config();
  slow_config.shells = {DelayShellSpec{80_ms}};

  ReplaySession a1{store, fast_config()};
  ReplaySession b1{store, slow_config};
  const auto a_inter = a1.load_once(site.primary_url(), 0);
  const auto b_inter = b1.load_once(site.primary_url(), 0);

  ReplaySession a2{store, fast_config()};
  const auto a_solo = a2.load_once(site.primary_url(), 0);
  ReplaySession b2{store, slow_config};
  const auto b_solo = b2.load_once(site.primary_url(), 0);

  EXPECT_EQ(a_inter.page_load_time, a_solo.page_load_time);
  EXPECT_EQ(b_inter.page_load_time, b_solo.page_load_time);
}

TEST(EndToEnd, MultiplexedReplayLoadsWholeSite) {
  // The SPDY-like protocol end to end: mux browser against mux replay
  // servers, one connection per origin, same recorded bytes.
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  auto config = fast_config();
  config.browser.protocol = web::AppProtocol::kMultiplexed;
  config.shells = {DelayShellSpec{20_ms}};
  ReplaySession::Options options;
  options.multiplexed = true;
  ReplaySession session{store, config, options};
  const auto result = session.load_once(site.primary_url());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, site.objects.size());
  // Exactly one TCP connection per contacted origin.
  EXPECT_EQ(result.connections_opened, result.origins_contacted);
}

TEST(EndToEnd, MultiplexedBeatsHttp11AtHighRtt) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);

  auto http_config = fast_config();
  http_config.shells = {DelayShellSpec{150_ms}};
  ReplaySession http_session{store, http_config};

  auto mux_config = fast_config();
  mux_config.browser.protocol = web::AppProtocol::kMultiplexed;
  mux_config.shells = {DelayShellSpec{150_ms}};
  ReplaySession::Options mux_options;
  mux_options.multiplexed = true;
  ReplaySession mux_session{store, mux_config, mux_options};

  const auto http_plt =
      http_session.load_once(site.primary_url()).page_load_time;
  const auto mux_plt = mux_session.load_once(site.primary_url()).page_load_time;
  EXPECT_LT(mux_plt, http_plt);
}

TEST(EndToEnd, MeasureCollectsRequestedSampleCount) {
  const auto site = corpus::generate_site(test_site_spec());
  const auto store = record_test_site(site);
  ReplaySession session{store, fast_config()};
  const auto samples = session.measure(site.primary_url(), 5);
  EXPECT_EQ(samples.size(), 5u);
  EXPECT_GT(samples.min(), 0.0);
}

}  // namespace
}  // namespace mahimahi::core
