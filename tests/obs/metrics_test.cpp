// Unit tests for the metrics layer: histogram bucket math, snapshot
// determinism, merge independence, the direct-vs-replay equality that the
// runner's post-hoc derivation rests on, and the derived-metric catalog.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mahimahi::obs {
namespace {

TEST(Histogram, ZeroAndNegativeShareTheZeroBucket) {
  EXPECT_EQ(Histogram::bucket_of(0.0), Histogram::bucket_of(-3.5));
  EXPECT_EQ(Histogram::upper_bound(Histogram::bucket_of(0.0)), 0.0);
}

TEST(Histogram, BucketBoundariesAreExclusiveUpperBounds) {
  // Buckets cover [lower, upper): the bound itself starts the next bucket,
  // anything just below it still belongs to this one. percentile() reports
  // upper bounds, so this relation caps its overestimate at one sub-bucket.
  for (const double value : {0.001, 0.5, 1.0, 1.5, 2.0, 3.0, 1000.0,
                             123456.789, 1e9}) {
    const std::int32_t bucket = Histogram::bucket_of(value);
    const double upper = Histogram::upper_bound(bucket);
    EXPECT_GT(upper, value) << value;
    EXPECT_EQ(Histogram::bucket_of(upper), bucket + 1) << value;
    EXPECT_EQ(Histogram::bucket_of(upper * 0.9999), bucket) << value;
  }
}

TEST(Histogram, FourSubBucketsPerOctave) {
  // One octave = exactly four quarter-octave buckets.
  EXPECT_EQ(Histogram::bucket_of(2.0) - Histogram::bucket_of(1.0), 4);
  EXPECT_EQ(Histogram::bucket_of(1024.0) - Histogram::bucket_of(512.0), 4);
}

TEST(Histogram, PercentileClampsToObservedRange) {
  Histogram h;
  h.observe(10.0);
  h.observe(11.0);
  h.observe(12.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 12.0);
  EXPECT_GE(h.percentile(50), 10.0);
  EXPECT_LE(h.percentile(99), 12.0);  // clamped: bucket bound > 12
  EXPECT_DOUBLE_EQ(h.percentile(100), 12.0);
}

TEST(Histogram, SingleValuePercentilesAreExact) {
  Histogram h;
  h.observe(123.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 123.0);
}

TEST(Histogram, MergeEqualsInterleavedObservation) {
  Histogram whole;
  Histogram left;
  Histogram right;
  for (int i = 1; i <= 100; ++i) {
    const double value = i * 7.3;
    whole.observe(value);
    (i % 2 == 0 ? left : right).observe(value);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_EQ(left.buckets(), whole.buckets());
  EXPECT_DOUBLE_EQ(left.percentile(50), whole.percentile(50));
  EXPECT_DOUBLE_EQ(left.percentile(99), whole.percentile(99));
}

TEST(MetricsRegistry, SnapshotSerializationsAreDeterministic) {
  const auto build = [] {
    MetricsRegistry registry;
    registry.add_counter("b.count", 2);
    registry.add_counter("a.count");
    registry.set_gauge("share", 0.25);
    registry.observe("latency_us", 100.0);
    registry.observe("latency_us", 900.0);
    return registry.snapshot();
  };
  const MetricsSnapshot snap = build();
  EXPECT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.to_json(), build().to_json());
  EXPECT_EQ(snap.to_csv(), build().to_csv());
  // Names serialize in sorted order regardless of insertion order.
  EXPECT_LT(snap.to_json().find("a.count"), snap.to_json().find("b.count"));
  EXPECT_NE(snap.to_json().find("\"schema\": \"mahimahi-metrics-v1\""),
            std::string::npos);
  // The inline form is a single line (embeddable in a report row).
  EXPECT_EQ(snap.to_json_inline().find('\n'), std::string::npos);
}

TEST(MetricsRegistry, DirectPathEqualsTraceReplay) {
  // Live instrumentation: a Tracer wired to a registry counts events as
  // they happen. Post-hoc: replaying the buffer's events must land on the
  // exact same counters — the property that makes journal-resumed metric
  // derivation byte-identical to a live run.
  MetricsRegistry live;
  Tracer tracer;
  tracer.set_metrics(&live);
  tracer.event(100, Layer::kLink, EventKind::kEnqueue, -1, 1, 3, 0.0, "up");
  tracer.event(200, Layer::kLink, EventKind::kDequeue, -1, 1, 2, 0.0, "up");
  tracer.event(300, Layer::kTcp, EventKind::kTcpRetransmit, 0, 1, 1, 0.0, "");
  const TraceBuffer buffer = tracer.take();

  MetricsRegistry replayed;
  for (const TraceEvent& event : buffer.events) {
    replayed.observe_trace_event(event);
  }
  EXPECT_EQ(live.snapshot().to_json(), replayed.snapshot().to_json());
  EXPECT_EQ(live.snapshot().counters.at("events.link.enqueue"), 1);
}

std::vector<LoadTrace> waterfall_loads() {
  Tracer tracer;
  // Queue residence: packet 7 spends 900 us in "up".
  tracer.event(100, Layer::kLink, EventKind::kEnqueue, -1, 7, 1, 0.0, "up");
  tracer.event(1'000, Layer::kLink, EventKind::kDequeue, -1, 7, 0, 0.0, "up");
  // cwnd converges to ~40000 after an early low sample.
  tracer.event(1'000, Layer::kTcp, EventKind::kTcpCwndSample, 0, 1, 0,
               10'000.0, "");
  tracer.event(2'000, Layer::kTcp, EventKind::kTcpCwndSample, 0, 1, 0,
               39'000.0, "");
  tracer.event(3'000, Layer::kTcp, EventKind::kTcpCwndSample, 0, 1, 0,
               40'000.0, "");
  // Two retransmit bursts: gap 200 ms splits them.
  tracer.event(1'000, Layer::kTcp, EventKind::kTcpRetransmit, 0, 1, 1, 0.0,
               "");
  tracer.event(2'000, Layer::kTcp, EventKind::kTcpRetransmit, 0, 1, 2, 0.0,
               "");
  tracer.event(202'000, Layer::kTcp, EventKind::kTcpRetransmit, 0, 1, 3, 0.0,
               "");
  ObjectRecord& object = tracer.object(0, "http://site.test/a.js");
  object.fetch_start = 0;
  object.dns_start = 0;
  object.dns_done = 400;
  object.connect_done = 700;
  object.request_sent = 1'000;
  object.first_byte = 2'000;
  object.complete = 3'000;
  // A retried-but-recovered object: fault.recovery_us material.
  ObjectRecord& retried = tracer.object(0, "http://site.test/b.css");
  retried.fetch_start = 500;
  retried.complete = 9'500;
  retried.attempts = 3;
  tracer.page(PageRecord{0, "http://site.test/", 0, 4'000, 4'000, true});
  std::vector<LoadTrace> loads;
  loads.push_back(LoadTrace{0, tracer.take()});
  return loads;
}

TEST(DeriveMetrics, CatalogCoversQueueTcpPltAndFaults) {
  const MetricsSnapshot snap = derive_cell_metrics(waterfall_loads());

  EXPECT_EQ(snap.counters.at("objects.count"), 2);
  EXPECT_EQ(snap.counters.at("objects.retried"), 1);
  EXPECT_EQ(snap.counters.at("pages.count"), 1);

  const auto& residence = snap.histograms.at("queue.residence_us");
  EXPECT_EQ(residence.count, 1u);
  EXPECT_DOUBLE_EQ(residence.sum, 900.0);

  // cwnd converges at the 2000-us sample (39000 is within 25% of 40000);
  // convergence time counts from the first sample: 2000 - 1000.
  const auto& convergence = snap.histograms.at("tcp.cwnd_convergence_us");
  EXPECT_EQ(convergence.count, 1u);
  EXPECT_DOUBLE_EQ(convergence.sum, 1'000.0);

  // Bursts: {1000, 2000} and {202000} — sizes 2 and 1.
  const auto& burst = snap.histograms.at("tcp.retransmit_burst");
  EXPECT_EQ(burst.count, 2u);
  EXPECT_DOUBLE_EQ(burst.sum, 3.0);
  EXPECT_DOUBLE_EQ(burst.max, 2.0);

  // PLT critical path: a.js contributes dns 400, connect 300, request 300,
  // first-byte 1000, receive 1000; b.css (no intermediate stamps) puts its
  // whole 9000-us span into receive.
  EXPECT_DOUBLE_EQ(snap.histograms.at("plt.phase.dns_us").sum, 400.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("plt.phase.connect_us").sum, 300.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("plt.phase.first_byte_us").sum,
                   1'000.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("plt.phase.receive_us").sum, 10'000.0);

  // Shares are the phase sums normalized over the cell.
  double share_total = 0;
  for (const char* phase :
       {"dns", "connect", "request", "first_byte", "receive"}) {
    share_total += snap.gauges.at("plt.share." + std::string{phase});
  }
  EXPECT_NEAR(share_total, 1.0, 1e-9);

  // The retried object recovered: 9500 - 500 us.
  const auto& recovery = snap.histograms.at("fault.recovery_us");
  EXPECT_EQ(recovery.count, 1u);
  EXPECT_DOUBLE_EQ(recovery.sum, 9'000.0);
}

TEST(DeriveMetrics, CellDerivationIsAPureFunctionOfTheLoads) {
  EXPECT_EQ(derive_cell_metrics(waterfall_loads()).to_json(),
            derive_cell_metrics(waterfall_loads()).to_json());
}

}  // namespace
}  // namespace mahimahi::obs
