// Tests for the trace-analytics layer: CSV parsing, LoadTrace
// reconstruction (export → parse → re-export round-trips byte-exactly),
// and run-to-run diffing with divergence localization.

#include "obs/analyze.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mahimahi::obs {
namespace {

std::vector<LoadTrace> sample_loads() {
  std::vector<LoadTrace> loads;
  for (int load = 0; load < 2; ++load) {
    Tracer tracer;
    tracer.event(1'000 + load, Layer::kLink, EventKind::kEnqueue, -1, 5, 3,
                 4500.0, "uplink");
    tracer.event(2'000, Layer::kTcp, EventKind::kTcpCwndSample, 0, 1, 0,
                 14480.0, "");
    ObjectRecord& object = tracer.object(0, "http://site.test/a.js");
    object.kind = "js";
    object.fetch_start = 500;
    object.dns_start = 500;
    object.dns_done = 900;
    object.connect_done = 1'000;
    object.request_sent = 1'100;
    object.first_byte = 2'200;
    object.complete = 3'300;
    object.bytes = 1234;
    object.status = 200;
    tracer.page(PageRecord{0, "http://site.test/", 0, 4'000, 4'000, true});
    loads.push_back(LoadTrace{load, tracer.take()});
  }
  return loads;
}

const TraceMeta kMeta{"unit", "cell-label", 3, 99};

ParsedTrace parse(const std::string& csv) {
  std::istringstream in{csv};
  std::string error;
  auto parsed = parse_trace_csv(in, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return *parsed;
}

TEST(ParseTrace, ReadsHeaderAndRows) {
  const ParsedTrace trace = parse(to_csv(kMeta, sample_loads()));
  EXPECT_EQ(trace.experiment, "unit");
  EXPECT_EQ(trace.cell_label, "cell-label");
  EXPECT_EQ(trace.cell_index, 3);
  EXPECT_EQ(trace.seed, 99u);
  // 2 events + 1 object + 1 page per load, 2 loads.
  EXPECT_EQ(trace.rows.size(), 8u);
  EXPECT_EQ(trace.rows[0].layer, "link");
  EXPECT_EQ(trace.rows[0].flow, 5u);
}

TEST(ParseTrace, RejectsForeignInput) {
  std::istringstream in{"not,a,trace\n1,2,3\n"};
  std::string error;
  EXPECT_FALSE(parse_trace_csv(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DetailHelpers, ExtractFieldsFromBlobs) {
  const std::string detail = "kind=js;status=200;first_byte_us=2200;error=";
  EXPECT_EQ(detail_field(detail, "kind"), "js");
  EXPECT_EQ(detail_field(detail, "error"), "");
  EXPECT_EQ(detail_field(detail, "absent"), "");
  EXPECT_EQ(detail_us(detail, "first_byte_us"), 2200);
  EXPECT_EQ(detail_us(detail, "absent"), -1);
}

TEST(ToLoadTraces, ReExportReproducesTheExactBytes) {
  // The reconstruction inverts to_csv up to the CSV's own precision — so
  // exporting the reconstruction must reproduce the file byte for byte.
  // This is the property that makes mm_metrics on an exported trace equal
  // the in-run derivation.
  const std::string csv = to_csv(kMeta, sample_loads());
  const ParsedTrace trace = parse(csv);
  const std::vector<LoadTrace> rebuilt = to_load_traces(trace);
  ASSERT_EQ(rebuilt.size(), 2u);
  EXPECT_EQ(rebuilt[0].load_index, 0);
  EXPECT_EQ(rebuilt[0].buffer.events.size(), 2u);
  EXPECT_EQ(rebuilt[0].buffer.objects.size(), 1u);
  EXPECT_EQ(rebuilt[0].buffer.objects[0].connect_done, 1'000);
  EXPECT_EQ(rebuilt[0].buffer.pages.size(), 1u);
  EXPECT_EQ(to_csv(kMeta, rebuilt), csv);
}

TEST(DiffTraces, IdenticalRunsCompareIdentical) {
  const std::string csv = to_csv(kMeta, sample_loads());
  const TraceDiff diff = diff_traces({parse(csv)}, {parse(csv)});
  EXPECT_TRUE(diff.identical);
  ASSERT_EQ(diff.cells.size(), 1u);
  EXPECT_TRUE(diff.cells[0].identical);
}

TEST(DiffTraces, LocalizesTheFirstDivergentEvent) {
  const std::string csv = to_csv(kMeta, sample_loads());
  ParsedTrace a = parse(csv);
  ParsedTrace b = parse(csv);
  // Perturb the second load's enqueue row (row index 4): a different
  // queue-depth value.
  ASSERT_EQ(b.rows[4].kind, "enqueue");
  b.rows[4].value = 9;
  b.rows[4].raw += "?";  // any byte change diverges the raw compare

  const TraceDiff diff = diff_traces({a}, {b});
  EXPECT_FALSE(diff.identical);
  ASSERT_EQ(diff.cells.size(), 1u);
  const CellDiff& cell = diff.cells[0];
  EXPECT_FALSE(cell.identical);
  EXPECT_EQ(cell.first_divergence, 4u);
  EXPECT_EQ(cell.layer, "link");
  EXPECT_EQ(cell.kind, "enqueue");
  EXPECT_NE(cell.a_line, cell.b_line);
}

TEST(DiffTraces, RanksCountAndMetricDeltas) {
  const std::string csv = to_csv(kMeta, sample_loads());
  ParsedTrace a = parse(csv);
  ParsedTrace b = parse(csv);
  // Drop load 1's cwnd sample from b: a count delta in tcp.cwnd and
  // derived-metric deltas (events counter, convergence stats).
  const std::size_t cwnd_row = 5;
  ASSERT_EQ(b.rows[cwnd_row].kind, "cwnd");
  b.rows.erase(b.rows.begin() + static_cast<std::ptrdiff_t>(cwnd_row));

  const TraceDiff diff = diff_traces({a}, {b});
  ASSERT_EQ(diff.cells.size(), 1u);
  const CellDiff& cell = diff.cells[0];
  EXPECT_FALSE(cell.identical);
  ASSERT_FALSE(cell.count_deltas.empty());
  EXPECT_EQ(cell.count_deltas[0].key, "tcp.cwnd");
  EXPECT_EQ(cell.count_deltas[0].a, 2);
  EXPECT_EQ(cell.count_deltas[0].b, 1);
  bool found = false;
  for (const CellDiff::MetricDelta& delta : cell.metric_deltas) {
    if (delta.name == "events.tcp.cwnd") {
      found = true;
      EXPECT_DOUBLE_EQ(delta.a, 2.0);
      EXPECT_DOUBLE_EQ(delta.b, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiffTraces, UnpairedCellsAreDivergences) {
  const std::string csv = to_csv(kMeta, sample_loads());
  const TraceMeta other{"unit", "other-cell", 4, 100};
  const std::string other_csv = to_csv(other, sample_loads());
  const TraceDiff diff =
      diff_traces({parse(csv)}, {parse(csv), parse(other_csv)});
  EXPECT_FALSE(diff.identical);
  ASSERT_EQ(diff.cells.size(), 2u);
  EXPECT_TRUE(diff.cells[0].identical);
  EXPECT_EQ(diff.cells[1].label, "other-cell");
  EXPECT_FALSE(diff.cells[1].in_a);
}

}  // namespace
}  // namespace mahimahi::obs
