// Golden tests for the trace exporters. The HAR output is pinned byte for
// byte against a checked-in file (viewers are strict about field shape);
// the Chrome trace is checked structurally: every event object must carry
// the four fields ("ph", "pid", "tid", "ts") chrome://tracing requires.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mahimahi::obs {
namespace {

std::string golden_path(const std::string& name) {
  return std::string{MAHI_TEST_SOURCE_DIR} + "/obs/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// MAHI_UPDATE_GOLDEN=1 re-pins the goldens from the actual output (then
// still compares — regeneration is explicit, never silent).
void maybe_update_golden(const std::string& path, const std::string& actual) {
  if (std::getenv("MAHI_UPDATE_GOLDEN") == nullptr) {
    return;
  }
  std::ofstream out{path, std::ios::binary};
  out << actual;
}

// A fixture touching every exporter branch: events on shared and
// per-session lanes, a fully-stamped object, a warm-connection object
// (connect -1), a failed object, and both page outcomes.
std::vector<LoadTrace> golden_loads() {
  std::vector<LoadTrace> loads;
  Tracer tracer;
  tracer.event(500, Layer::kLink, EventKind::kEnqueue, -1, 3, 2, 1504.0,
               "uplink");
  tracer.event(900, Layer::kLink, EventKind::kDequeue, -1, 3, 1, 1504.0,
               "uplink");
  tracer.event(1'200, Layer::kTcp, EventKind::kTcpCwndSample, 0, 1, 0,
               14'480.0, "");
  tracer.event(1'500, Layer::kDns, EventKind::kDnsAnswer, 0, 0, 1, 0.25,
               "site.test");
  ObjectRecord& cold = tracer.object(0, "http://site.test/index.html");
  cold.kind = "html";
  cold.fetch_start = 0;
  cold.dns_start = 0;
  cold.dns_done = 400;
  cold.connect_done = 900;
  cold.request_sent = 1'000;
  cold.first_byte = 1'800;
  cold.complete = 2'600;
  cold.bytes = 8'192;
  cold.status = 200;
  ObjectRecord& warm = tracer.object(0, "http://site.test/app.js");
  warm.kind = "js";
  warm.fetch_start = 2'700;
  warm.request_sent = 2'750;
  warm.first_byte = 3'100;
  warm.complete = 3'900;
  warm.bytes = 2'048;
  warm.status = 200;
  ObjectRecord& broken = tracer.object(0, "http://site.test/missing.png");
  broken.kind = "png";
  broken.fetch_start = 2'800;
  broken.request_sent = 2'820;
  broken.complete = 4'000;
  broken.status = 404;
  broken.attempts = 2;
  broken.failed = true;
  broken.error = "http-404";
  tracer.page(PageRecord{0, "http://site.test/", 0, 4'200, 4'500, true});
  loads.push_back(LoadTrace{0, tracer.take()});

  Tracer second;
  second.event(100, Layer::kFault, EventKind::kFaultInjected, 0, 0, 1, 0.0,
               "drop-conn");
  ObjectRecord& only = second.object(0, "http://site.test/index.html");
  only.kind = "html";
  only.fetch_start = 0;
  only.request_sent = 50;
  only.complete = 600;
  only.failed = true;
  only.error = "connect-timeout";
  second.page(PageRecord{0, "http://site.test/", 0, 700, 700, false});
  loads.push_back(LoadTrace{1, second.take()});
  return loads;
}

const TraceMeta kMeta{"export-golden", "fifo+reno", 2, 42};

TEST(ExportGolden, HarMatchesTheCheckedInGolden) {
  const std::string har = to_har(kMeta, golden_loads());
  maybe_update_golden(golden_path("trace.har"), har);
  const std::string golden = read_file(golden_path("trace.har"));
  EXPECT_EQ(har, golden) << "actual HAR:\n" << har;
}

TEST(ExportGolden, ChromeTraceEventsCarryRequiredFields) {
  const std::string trace = to_chrome_trace(kMeta, golden_loads());
  // Split the traceEvents array into objects; every one of them must have
  // the viewer-required keys.
  std::istringstream lines{trace};
  std::string line;
  std::size_t events = 0;
  while (std::getline(lines, line)) {
    const std::size_t open = line.find('{');
    if (open == std::string::npos ||
        line.find("\"traceEvents\"") != std::string::npos ||
        line.find("\"ph\":\"M\"") != std::string::npos) {
      // Metadata records (thread names) legitimately omit "ts".
      continue;
    }
    ++events;
    for (const char* field : {"\"ph\":", "\"pid\":", "\"tid\":", "\"ts\":"}) {
      EXPECT_NE(line.find(field), std::string::npos)
          << "event missing " << field << ": " << line;
    }
  }
  // Fixture has 5 events + 4 objects + 2 pages + metadata lanes; make sure
  // the scan actually saw them rather than vacuously passing.
  EXPECT_GE(events, 11u);
}

TEST(ExportGolden, CsvMatchesTheCheckedInGolden) {
  const std::string csv = to_csv(kMeta, golden_loads());
  maybe_update_golden(golden_path("trace.csv"), csv);
  const std::string golden = read_file(golden_path("trace.csv"));
  EXPECT_EQ(csv, golden) << "actual CSV:\n" << csv;
}

}  // namespace
}  // namespace mahimahi::obs
