// The exported-artifact determinism contract, end to end through the
// experiment engine: for a fixed spec, the bytes of every per-cell trace
// artifact (Chrome trace JSON, HAR, CSV) are identical at any thread
// count and across shard splits — including chaos (fault-ladder) and
// fleet (shared-world mux) cells. Also pins that turning tracing on does
// not perturb the measurements themselves.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_runner.hpp"
#include "experiment/runner.hpp"
#include "fault/fault.hpp"

namespace mahimahi::experiment {
namespace {

namespace fs = std::filesystem;

SiteAxis tiny_site() {
  SiteAxis axis;
  axis.label = "tiny";
  axis.site.name = "tiny";
  axis.site.seed = 7;
  axis.site.server_count = 3;
  axis.site.object_count = 8;
  axis.site.size_scale = 0.25;
  return axis;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "obs-unit";
  spec.seed = 99;
  spec.loads_per_cell = 2;
  spec.sites = {tiny_site()};
  spec.protocols = {web::AppProtocol::kHttp11};
  ShellAxis cable;
  cable.label = "cable";
  ShellLayerSpec delay;
  delay.kind = ShellLayerSpec::Kind::kDelay;
  delay.delay_one_way = 10'000;
  ShellLayerSpec link;
  link.kind = ShellLayerSpec::Kind::kLink;
  link.up_mbps = 8;
  link.down_mbps = 8;
  cable.layers = {delay, link};
  spec.shells = {cable};
  spec.queues = {QueueAxis{"fifo", net::QueueSpec{}}};
  spec.ccs = {CcAxis{"reno", {"reno"}}};
  return spec;
}

/// small_spec() plus a chaos cell: every fault injector active, client
/// defended — the hardest case for trace determinism (retries, timeouts,
/// injected events).
ExperimentSpec chaos_spec() {
  ExperimentSpec spec = small_spec();
  FaultAxis chaos;
  chaos.label = "chaos";
  chaos.fault = fault::parse_fault_spec(
      "crash:p=0.3 retry:deadline=2s,max=3,base=100ms,cap=1s");
  spec.faults = {FaultAxis{}, chaos};
  return spec;
}

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing artifact " << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / name;
  fs::remove_all(dir);
  return dir;
}

constexpr const char* kSuffixes[] = {".trace.json", ".har", ".csv"};

void expect_identical_artifacts(const fs::path& a, const fs::path& b,
                                const std::vector<int>& cell_indices) {
  for (const int cell : cell_indices) {
    for (const char* suffix : kSuffixes) {
      const std::string name = "cell" + std::to_string(cell) + suffix;
      EXPECT_EQ(read_file(a / name), read_file(b / name))
          << name << " differs between " << a << " and " << b;
    }
  }
}

TEST(ObsDeterminism, ArtifactsByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = chaos_spec();
  core::ParallelRunner one{1};
  core::ParallelRunner eight{8};
  RunOptions options_one;
  options_one.runner = &one;
  options_one.transport_probes = false;
  options_one.trace_dir = fresh_dir("obs-threads-1").string();
  RunOptions options_eight = options_one;
  options_eight.runner = &eight;
  options_eight.trace_dir = fresh_dir("obs-threads-8").string();

  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_eight);
  EXPECT_EQ(a.to_json(), b.to_json());
  ASSERT_EQ(a.cells.size(), 2u);
  expect_identical_artifacts(options_one.trace_dir, options_eight.trace_dir,
                             {0, 1});
  // The chaos cell really exercised the fault path, and its injections
  // landed in the trace.
  EXPECT_GT(a.cells[1].retries + a.cells[1].timeouts +
                a.cells[1].objects_failed,
            0u);
  const std::string csv =
      read_file(fs::path{options_one.trace_dir} / "cell1.csv");
  EXPECT_NE(csv.find(",fault,injected,"), std::string::npos);
}

TEST(ObsDeterminism, FleetArtifactsByteIdenticalAcrossThreadCounts) {
  // A shared-world mux is one indivisible simulation tracing into one
  // buffer; sessions are told apart by their global fleet index.
  ExperimentSpec spec = small_spec();
  spec.fleets = {FleetAxis{"crowd", 3, 10'000}};
  core::ParallelRunner one{1};
  core::ParallelRunner eight{8};
  RunOptions options_one;
  options_one.runner = &one;
  options_one.transport_probes = false;
  options_one.trace_dir = fresh_dir("obs-fleet-1").string();
  RunOptions options_eight = options_one;
  options_eight.runner = &eight;
  options_eight.trace_dir = fresh_dir("obs-fleet-8").string();

  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_eight);
  EXPECT_EQ(a.to_json(), b.to_json());
  expect_identical_artifacts(options_one.trace_dir, options_eight.trace_dir,
                             {0});
  // All three sessions appear as distinct streams, plus shared infra (-1).
  const std::string csv =
      read_file(fs::path{options_one.trace_dir} / "cell0.csv");
  for (const char* prefix : {"\n0,-1,", "\n0,0,", "\n0,1,", "\n0,2,"}) {
    EXPECT_NE(csv.find(prefix), std::string::npos)
        << "stream " << prefix << " missing from the fleet trace";
  }
}

TEST(ObsDeterminism, ShardSplitsReproduceTheUnshardedArtifacts) {
  const ExperimentSpec spec = chaos_spec();
  RunOptions full_options;
  full_options.transport_probes = false;
  full_options.trace_dir = fresh_dir("obs-full").string();
  const Report full = run_experiment(spec, full_options);
  ASSERT_EQ(full.cells.size(), 2u);

  // Each shard writes only its own cells; the artifacts use global cell
  // indices, so the two shard dirs jointly hold the full run's files.
  const fs::path shard_dir = fresh_dir("obs-shards");
  for (int shard = 0; shard < 2; ++shard) {
    RunOptions options;
    options.transport_probes = false;
    options.shard_count = 2;
    options.shard_index = shard;
    options.trace_dir = shard_dir.string();
    run_experiment(spec, options);
  }
  expect_identical_artifacts(full_options.trace_dir, shard_dir, {0, 1});
}

TEST(ObsDeterminism, TracingDoesNotPerturbTheReport) {
  const ExperimentSpec spec = chaos_spec();
  RunOptions untraced;
  untraced.transport_probes = false;
  RunOptions traced = untraced;
  traced.trace_dir = fresh_dir("obs-perturb").string();
  const Report a = run_experiment(spec, untraced);
  const Report b = run_experiment(spec, traced);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

}  // namespace
}  // namespace mahimahi::experiment
