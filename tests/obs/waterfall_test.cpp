// Golden test for mm_trace_dump --waterfall rendering, pinning the two
// historically-wrong cases: a zero-duration phase must not blot out its
// successor's columns, and an object that failed early must end its bar at
// its last recorded timestamp instead of stretching to the axis end.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mahimahi::obs {
namespace {

std::string golden_path(const std::string& name) {
  return std::string{MAHI_TEST_SOURCE_DIR} + "/obs/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// MAHI_UPDATE_GOLDEN=1 re-pins the golden from the actual output (then
// still compares, so a flaky renderer can't silently self-bless).
void maybe_update_golden(const std::string& path, const std::string& actual) {
  if (std::getenv("MAHI_UPDATE_GOLDEN") == nullptr) {
    return;
  }
  std::ofstream out{path, std::ios::binary};
  out << actual;
}

std::vector<TraceRow> waterfall_rows() {
  Tracer tracer;
  // A full-phase object: dns 0-1 ms, connect to 2 ms, request at 3 ms,
  // first byte at 5 ms, complete at 10 ms.
  ObjectRecord& full = tracer.object(0, "http://site.test/index.html");
  full.kind = "html";
  full.fetch_start = 0;
  full.dns_start = 0;
  full.dns_done = 1'000;
  full.connect_done = 2'000;
  full.request_sent = 3'000;
  full.first_byte = 5'000;
  full.complete = 10'000;
  full.bytes = 4'096;
  full.status = 200;
  // Zero-duration dns and connect (cached resolution, warm socket reused
  // at the same instant): the '=' request phase must start immediately —
  // the zero-width phases claim no columns.
  ObjectRecord& zero = tracer.object(1, "http://site.test/cached.css");
  zero.kind = "css";
  zero.fetch_start = 2'000;
  zero.dns_start = 2'000;
  zero.dns_done = 2'000;
  zero.connect_done = 2'000;
  zero.request_sent = 2'000;
  zero.first_byte = 4'000;
  zero.complete = 8'000;
  zero.bytes = 512;
  zero.status = 200;
  // An early failure: dns finished at 1 ms and nothing after — the bar
  // must stop there, not run to the axis end.
  ObjectRecord& dead = tracer.object(2, "http://site.test/broken.js");
  dead.kind = "js";
  dead.fetch_start = 500;
  dead.dns_start = 500;
  dead.dns_done = 1'000;
  dead.attempts = 3;
  dead.failed = true;
  dead.error = "connect-timeout";
  tracer.page(PageRecord{0, "http://site.test/", 0, 12'000, 12'000, true});

  const TraceMeta meta{"waterfall-golden", "cell", 0, 7};
  std::vector<LoadTrace> loads;
  loads.push_back(LoadTrace{0, tracer.take()});
  const std::string csv = to_csv(meta, loads);
  std::istringstream in{csv};
  std::string error;
  const auto parsed = parse_trace_csv(in, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed->rows;
}

TEST(Waterfall, ZeroDurationPhasesClaimNoColumns) {
  const std::string out = render_waterfall(waterfall_rows());
  std::istringstream lines{out};
  std::string line;
  std::getline(lines, line);  // axis header
  std::string full, zero, dead;
  std::getline(lines, full);
  std::getline(lines, zero);
  std::getline(lines, dead);
  ASSERT_NE(full.find("index.html"), std::string::npos);
  ASSERT_NE(zero.find("cached.css"), std::string::npos);
  ASSERT_NE(dead.find("broken.js"), std::string::npos);

  // The cached object's zero-width dns/connect phases paint nothing; its
  // bar opens directly in the request phase.
  EXPECT_EQ(zero.find('-'), std::string::npos);
  EXPECT_EQ(zero.find('+'), std::string::npos);
  const std::size_t bar_open = zero.find('|');
  ASSERT_NE(bar_open, std::string::npos);
  const std::size_t first_mark = zero.find_first_not_of(' ', bar_open + 1);
  EXPECT_EQ(zero[first_mark], '=');
  // The full object still renders every phase.
  for (const char mark : {'-', '+', '=', '#'}) {
    EXPECT_NE(full.find(mark), std::string::npos) << mark;
  }
}

TEST(Waterfall, EarlyFailureEndsAtLastKnownTimestamp) {
  const std::string out = render_waterfall(waterfall_rows());
  std::istringstream lines{out};
  std::string line;
  std::string dead;
  while (std::getline(lines, line)) {
    if (line.find("broken.js") != std::string::npos) {
      dead = line;
    }
  }
  ASSERT_FALSE(dead.empty());
  EXPECT_NE(dead.find('!'), std::string::npos);
  EXPECT_NE(dead.find("FAILED"), std::string::npos);
  EXPECT_NE(dead.find("x3"), std::string::npos);
  // The axis spans 12 ms; the failure's last record is at 1 ms, so its bar
  // must end in the first tenth of the 64 columns.
  const std::size_t bar_open = dead.find('|');
  const std::size_t bang = dead.find('!');
  ASSERT_NE(bar_open, std::string::npos);
  EXPECT_LT(bang - bar_open, 10u);
  // Its printed duration is the recorded 0.5 ms, not the axis extent.
  EXPECT_NE(dead.find("0.5 ms"), std::string::npos);
}

TEST(Waterfall, RenderingMatchesTheGolden) {
  // Byte-for-byte pin of the renderer. An intentional change regenerates
  // with MAHI_UPDATE_GOLDEN=1 ./obs_waterfall_test.
  const std::string out = render_waterfall(waterfall_rows());
  maybe_update_golden(golden_path("waterfall.txt"), out);
  const std::string golden = read_file(golden_path("waterfall.txt"));
  EXPECT_EQ(out, golden) << "actual rendering:\n" << out;
}

}  // namespace
}  // namespace mahimahi::obs
