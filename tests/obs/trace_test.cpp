// Unit tests for the observability substrate: Tracer bookkeeping and the
// three exporters on a hand-built buffer.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/export.hpp"

namespace mahimahi::obs {
namespace {

TEST(Tracer, AllocatesSequentialFlowIds) {
  Tracer tracer;
  EXPECT_EQ(tracer.allocate_flow_id(), 1u);
  EXPECT_EQ(tracer.allocate_flow_id(), 2u);
  EXPECT_EQ(tracer.allocate_flow_id(), 3u);
}

TEST(Tracer, ObjectFindsOrCreatesPerSessionUrl) {
  Tracer tracer;
  ObjectRecord& a = tracer.object(0, "http://x.test/a");
  a.bytes = 7;
  // Same key returns the same record; a different session is a new one.
  EXPECT_EQ(tracer.object(0, "http://x.test/a").bytes, 7u);
  EXPECT_EQ(tracer.object(1, "http://x.test/a").bytes, 0u);
  EXPECT_EQ(tracer.buffer().objects.size(), 2u);
  ASSERT_NE(tracer.find_object(0, "http://x.test/a"), nullptr);
  EXPECT_EQ(tracer.find_object(2, "http://x.test/a"), nullptr);
}

TEST(Tracer, TakeMovesTheBufferOut) {
  Tracer tracer;
  tracer.event(10, Layer::kDns, EventKind::kDnsQuery, 0, 0, 0, 0.0, "x.test");
  const TraceBuffer buffer = tracer.take();
  EXPECT_EQ(buffer.events.size(), 1u);
  EXPECT_TRUE(tracer.buffer().empty());
}

std::vector<LoadTrace> sample_loads() {
  Tracer tracer;
  tracer.event(1'000, Layer::kLink, EventKind::kEnqueue, -1, 0, 3, 4500.0,
               "uplink");
  tracer.event(2'000, Layer::kTcp, EventKind::kTcpCwndSample, 0, 1, 0,
               14480.0, "");
  tracer.event(3'000, Layer::kFault, EventKind::kFaultInjected, 0, 0, 2, 0.0,
               "origin/crash");
  ObjectRecord& object = tracer.object(0, "http://site.test/a.js");
  object.kind = "js";
  object.fetch_start = 500;
  object.dns_start = 500;
  object.dns_done = 900;
  object.request_sent = 1'100;
  object.first_byte = 2'200;
  object.complete = 3'300;
  object.bytes = 1234;
  object.status = 200;
  tracer.page(PageRecord{0, "http://site.test/", 0, 4'000, 4'000, true});
  std::vector<LoadTrace> loads;
  loads.push_back(LoadTrace{0, tracer.take()});
  return loads;
}

TEST(Exporters, ChromeTraceCarriesLanesAndSpans) {
  const TraceMeta meta{"unit", "cell-label", 3, 99};
  const std::string json = to_chrome_trace(meta, sample_loads());
  // Valid-looking trace-event JSON: metadata naming the lanes, a counter
  // for the link queue, and the object span.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("shared:link"), std::string::npos);
  EXPECT_NE(json.find("s0:tcp"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("a.js"), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
}

TEST(Exporters, HarListsPagesAndEntriesWithTimings) {
  const TraceMeta meta{"unit", "cell-label", 3, 99};
  const std::string har = to_har(meta, sample_loads());
  EXPECT_NE(har.find("\"version\":\"1.2\""), std::string::npos);
  EXPECT_NE(har.find("http://site.test/a.js"), std::string::npos);
  EXPECT_NE(har.find("\"onLoad\":4.000"), std::string::npos);
  // DNS phase: dns_done - dns_start = 400 us = 0.4 ms.
  EXPECT_NE(har.find("\"dns\":0.400"), std::string::npos);
}

TEST(Exporters, CsvRoundTripsEveryRecordKind) {
  const TraceMeta meta{"unit", "cell-label", 3, 99};
  const std::string csv = to_csv(meta, sample_loads());
  EXPECT_NE(csv.find("# mahimahi-obs-trace-v1 experiment=unit cell=3 "
                     "label=cell-label seed=99"),
            std::string::npos);
  EXPECT_NE(csv.find("load,session,t_us,layer,kind,flow,value,metric,label,"
                     "detail"),
            std::string::npos);
  EXPECT_NE(csv.find(",fault,injected,"), std::string::npos);
  EXPECT_NE(csv.find(",browser,object,"), std::string::npos);
  EXPECT_NE(csv.find(",browser,page,"), std::string::npos);
  EXPECT_NE(csv.find("first_byte_us=2200"), std::string::npos);
}

TEST(Exporters, EmptyLoadsStillProduceValidArtifacts) {
  const TraceMeta meta{"unit", "empty", 0, 1};
  const std::vector<LoadTrace> none;
  EXPECT_NE(to_chrome_trace(meta, none).find("\"traceEvents\""),
            std::string::npos);
  EXPECT_NE(to_har(meta, none).find("\"entries\":[]"), std::string::npos);
  EXPECT_NE(to_csv(meta, none).find("mahimahi-obs-trace-v1"),
            std::string::npos);
}

TEST(Exporters, SameInputSameBytes) {
  const TraceMeta meta{"unit", "cell-label", 3, 99};
  EXPECT_EQ(to_chrome_trace(meta, sample_loads()),
            to_chrome_trace(meta, sample_loads()));
  EXPECT_EQ(to_har(meta, sample_loads()), to_har(meta, sample_loads()));
  EXPECT_EQ(to_csv(meta, sample_loads()), to_csv(meta, sample_loads()));
}

}  // namespace
}  // namespace mahimahi::obs
