// Tests for the wall-clock profiler: disabled scopes are no-ops, enabled
// scopes aggregate by name with self-time excluding children, and the
// snapshot/report/json surfaces are deterministic in layout (sorted names).

#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace mahimahi::obs {
namespace {

// The profiler is process-global state; every test starts from a clean,
// disabled slate.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::enable(false);
    Profiler::reset();
  }
  void TearDown() override {
    Profiler::enable(false);
    Profiler::reset();
  }
};

TEST_F(ProfileTest, DisabledScopesRecordNothing) {
  {
    MAHI_PROFILE("record");
    MAHI_PROFILE("replay");
  }
  EXPECT_TRUE(Profiler::snapshot().empty());
  EXPECT_EQ(Profiler::to_json().find("\"name\""), std::string::npos);
}

TEST_F(ProfileTest, ScopesAggregateByName) {
  Profiler::enable(true);
  for (int i = 0; i < 3; ++i) {
    MAHI_PROFILE("replay");
  }
  {
    MAHI_PROFILE("export");
  }
  const auto entries = Profiler::snapshot();
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by name — the layout determinism the report/json rely on.
  EXPECT_EQ(entries[0].name, "export");
  EXPECT_EQ(entries[1].name, "replay");
  EXPECT_EQ(entries[0].count, 1u);
  EXPECT_EQ(entries[1].count, 3u);
}

TEST_F(ProfileTest, SelfTimeExcludesNestedScopes) {
  Profiler::enable(true);
  {
    MAHI_PROFILE("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      MAHI_PROFILE("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  const auto entries = Profiler::snapshot();
  ASSERT_EQ(entries.size(), 2u);
  const auto& inner = entries[0];
  const auto& outer = entries[1];
  ASSERT_EQ(inner.name, "inner");
  ASSERT_EQ(outer.name, "outer");
  // outer's total covers inner; its self time does not.
  EXPECT_GE(outer.total_ns, inner.total_ns);
  EXPECT_EQ(outer.self_ns, outer.total_ns - inner.total_ns);
  EXPECT_EQ(inner.self_ns, inner.total_ns);
}

TEST_F(ProfileTest, ReportAndJsonCarryEveryScope) {
  Profiler::enable(true);
  {
    MAHI_PROFILE("metrics");
  }
  const std::string report = Profiler::report();
  EXPECT_NE(report.find("profile (wall clock)"), std::string::npos);
  EXPECT_NE(report.find("metrics"), std::string::npos);
  const std::string json = Profiler::to_json();
  EXPECT_NE(json.find("\"schema\": \"mahimahi-profile-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"self_ns\""), std::string::npos);
}

TEST_F(ProfileTest, ResetClearsAggregates) {
  Profiler::enable(true);
  {
    MAHI_PROFILE("probe");
  }
  ASSERT_FALSE(Profiler::snapshot().empty());
  Profiler::reset();
  EXPECT_TRUE(Profiler::snapshot().empty());
}

TEST_F(ProfileTest, ScopesCountIndependentlyPerThread) {
  Profiler::enable(true);
  std::thread workers[4];
  for (std::thread& worker : workers) {
    worker = std::thread([] {
      for (int i = 0; i < 100; ++i) {
        MAHI_PROFILE("parallel");
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const auto entries = Profiler::snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 400u);
}

}  // namespace
}  // namespace mahimahi::obs
