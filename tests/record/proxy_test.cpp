// RecordingProxy integration tests: an application on an inner fabric, the
// "live web" on an outer fabric, the proxy invisibly in between.

#include "record/proxy.hpp"

#include <gtest/gtest.h>

#include "net/dns.hpp"
#include "net/element.hpp"
#include "util/time.hpp"

namespace mahimahi::record {
namespace {

using namespace mahimahi::literals;

const net::Address kOriginA{net::Ipv4{93, 184, 216, 34}, 80};
const net::Address kOriginB{net::Ipv4{151, 101, 1, 1}, 443};

struct ProxyHarness {
  net::EventLoop loop;
  net::Fabric inner{loop};
  net::Fabric outer{loop};
  RecordStore store;
  RecordingProxy proxy{inner, outer, store};
  std::vector<std::unique_ptr<net::HttpServer>> origins;

  ProxyHarness() { loop.set_event_limit(10'000'000); }

  void add_origin(const net::Address& address, std::string label) {
    origins.push_back(std::make_unique<net::HttpServer>(
        outer, address, [label = std::move(label)](const http::Request& r) {
          return http::make_ok("from " + label + " for " + r.target);
        }));
  }
};

TEST(RecordingProxy, InterceptsAndRelaysTransparently) {
  ProxyHarness h;
  h.add_origin(kOriginA, "A");

  // The application connects to the *real* origin address on the inner
  // fabric; no proxy configuration anywhere.
  net::HttpClientConnection app{h.inner, kOriginA};
  std::optional<http::Response> got;
  app.fetch(http::make_get("http://www.example.com/index.html"),
            [&](http::Response r) { got = std::move(r); });
  h.loop.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "from A for /index.html");
}

TEST(RecordingProxy, RecordsRequestResponsePair) {
  ProxyHarness h;
  h.add_origin(kOriginA, "A");
  net::HttpClientConnection app{h.inner, kOriginA};
  app.fetch(http::make_get("http://www.example.com/page?q=1"),
            [](http::Response) {});
  h.loop.run();

  ASSERT_EQ(h.store.size(), 1u);
  const RecordedExchange& exchange = h.store.exchanges()[0];
  EXPECT_EQ(exchange.host(), "www.example.com");
  EXPECT_EQ(exchange.request.target, "/page?q=1");
  EXPECT_EQ(exchange.server_address, kOriginA);
  EXPECT_EQ(exchange.scheme, "http");
  EXPECT_EQ(exchange.response.body, "from A for /page?q=1");
  EXPECT_EQ(h.proxy.exchanges_recorded(), 1u);
}

TEST(RecordingProxy, Port443RecordsHttpsScheme) {
  ProxyHarness h;
  h.add_origin(kOriginB, "B");
  net::HttpClientConnection app{h.inner, kOriginB};
  app.fetch(http::make_get("https://secure.example.com/login"),
            [](http::Response) {});
  h.loop.run();
  ASSERT_EQ(h.store.size(), 1u);
  EXPECT_EQ(h.store.exchanges()[0].scheme, "https");
}

TEST(RecordingProxy, KeepAliveConnectionRecordsEveryRequest) {
  ProxyHarness h;
  h.add_origin(kOriginA, "A");
  net::HttpClientConnection app{h.inner, kOriginA};
  int responses = 0;
  for (int i = 0; i < 7; ++i) {
    app.fetch(http::make_get("http://www.example.com/obj" + std::to_string(i)),
              [&](http::Response r) {
                EXPECT_EQ(r.status, 200);
                ++responses;
              });
  }
  h.loop.run();
  EXPECT_EQ(responses, 7);
  EXPECT_EQ(h.store.size(), 7u);
  // Recorded in request order.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(h.store.exchanges()[static_cast<std::size_t>(i)].request.target,
              "/obj" + std::to_string(i));
  }
}

TEST(RecordingProxy, MultipleOriginsRecordDistinctServerAddresses) {
  ProxyHarness h;
  h.add_origin(kOriginA, "A");
  h.add_origin(kOriginB, "B");
  net::HttpClientConnection app_a{h.inner, kOriginA};
  net::HttpClientConnection app_b{h.inner, kOriginB};
  app_a.fetch(http::make_get("http://a.example.com/x"), [](http::Response) {});
  app_b.fetch(http::make_get("https://b.example.com/y"), [](http::Response) {});
  h.loop.run();
  ASSERT_EQ(h.store.size(), 2u);
  EXPECT_EQ(h.store.distinct_servers().size(), 2u);
}

TEST(RecordingProxy, ConcurrentAppConnectionsToSameOrigin) {
  ProxyHarness h;
  h.add_origin(kOriginA, "A");
  std::vector<std::unique_ptr<net::HttpClientConnection>> apps;
  int responses = 0;
  for (int i = 0; i < 6; ++i) {
    apps.push_back(std::make_unique<net::HttpClientConnection>(h.inner, kOriginA));
    apps.back()->fetch(
        http::make_get("http://www.example.com/c" + std::to_string(i)),
        [&](http::Response) { ++responses; });
  }
  h.loop.run();
  EXPECT_EQ(responses, 6);
  EXPECT_EQ(h.store.size(), 6u);
}

TEST(RecordingProxy, UpstreamFailureCounted) {
  ProxyHarness h;  // no origins on the outer fabric at all
  net::HttpClientConnection app{h.inner, kOriginA};
  bool failed = false;
  app.fetch(http::make_get("http://www.example.com/"),
            [&](http::Response) { failed = false; });
  // The proxy accepts the inner connection, but its upstream SYN gets no
  // answer; eventually the upstream connection resets.
  h.loop.run();
  EXPECT_GT(h.proxy.upstream_failures(), 0u);
  EXPECT_EQ(h.store.size(), 0u);
  (void)failed;
}

TEST(RecordingProxy, PipelinedRequestsAnswerInOrder) {
  // A raw client pipelines two requests back-to-back on one connection;
  // the proxy's response slots must keep request order even if upstream
  // answers land out of order (exercised by distinct upstream conns).
  ProxyHarness h;
  h.add_origin(kOriginA, "A");
  net::TcpClient raw{h.inner, kOriginA, {}};

  http::ResponseParser parser;
  std::vector<std::string> bodies;
  net::TcpConnection::Callbacks cb;
  raw.connection().set_callbacks(net::TcpConnection::Callbacks{
      .on_data = [&](std::string_view bytes) {
        parser.push(bytes);
        while (parser.has_message()) {
          bodies.push_back(parser.pop().body);
        }
      }});
  parser.notify_request(http::Method::kGet);
  parser.notify_request(http::Method::kGet);

  http::Request first = http::make_get("http://www.example.com/first");
  http::Request second = http::make_get("http://www.example.com/second");
  raw.connection().send(http::to_bytes(first) + http::to_bytes(second));
  h.loop.run();

  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(bodies[0], "from A for /first");
  EXPECT_EQ(bodies[1], "from A for /second");
  EXPECT_EQ(h.store.size(), 2u);
}

TEST(RecordingProxy, InnerTrafficTraversesInnerChainOnly) {
  ProxyHarness h;
  // Meter both fabrics: the app's packets must appear on the inner chain,
  // the proxy's upstream packets on the outer chain.
  auto inner_meter = std::make_unique<net::MeterBox>();
  auto outer_meter = std::make_unique<net::MeterBox>();
  net::MeterBox& im = *inner_meter;
  net::MeterBox& om = *outer_meter;
  h.inner.chain().push_back(std::move(inner_meter));
  h.outer.chain().push_back(std::move(outer_meter));
  h.add_origin(kOriginA, "A");
  net::HttpClientConnection app{h.inner, kOriginA};
  app.fetch(http::make_get("http://www.example.com/"), [](http::Response) {});
  h.loop.run();
  EXPECT_GT(im.packets(net::Direction::kUplink), 0u);
  EXPECT_GT(om.packets(net::Direction::kUplink), 0u);
}

}  // namespace
}  // namespace mahimahi::record
