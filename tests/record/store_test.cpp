#include "record/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "record/serialize.hpp"

namespace mahimahi::record {
namespace {

RecordedExchange make_exchange(std::string_view url, net::Address server,
                               std::string body = "x") {
  RecordedExchange exchange;
  exchange.request = http::make_get(url);
  exchange.response = http::make_ok(std::move(body));
  exchange.server_address = server;
  return exchange;
}

const net::Address kA{net::Ipv4{10, 1, 1, 1}, 80};
const net::Address kB{net::Ipv4{10, 1, 1, 2}, 80};
const net::Address kB443{net::Ipv4{10, 1, 1, 2}, 443};

TEST(RecordStore, DistinctServersDeduplicates) {
  RecordStore store;
  store.add(make_exchange("http://a.test/1", kA));
  store.add(make_exchange("http://a.test/2", kA));
  store.add(make_exchange("http://b.test/1", kB));
  store.add(make_exchange("http://b.test/s", kB443));
  const auto servers = store.distinct_servers();
  EXPECT_EQ(servers.size(), 3u);  // (ip,port) pairs, like the paper counts
}

TEST(RecordStore, HostBindingsMapNamesToRecordedIps) {
  RecordStore store;
  store.add(make_exchange("http://a.test/1", kA));
  store.add(make_exchange("http://b.test/1", kB));
  const auto bindings = store.host_bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].first, "a.test");
  EXPECT_EQ(bindings[0].second, kA.ip);
  EXPECT_EQ(bindings[1].first, "b.test");
  EXPECT_EQ(bindings[1].second, kB.ip);
}

TEST(RecordStore, ForHostFiltersCaseInsensitively) {
  RecordStore store;
  store.add(make_exchange("http://A.test/1", kA));
  store.add(make_exchange("http://b.test/1", kB));
  EXPECT_EQ(store.for_host("a.TEST").size(), 1u);
  EXPECT_EQ(store.for_host("b.test").size(), 1u);
  EXPECT_TRUE(store.for_host("c.test").empty());
}

TEST(RecordStore, TotalResponseBytes) {
  RecordStore store;
  store.add(make_exchange("http://a.test/1", kA, std::string(100, 'x')));
  store.add(make_exchange("http://a.test/2", kA, std::string(250, 'y')));
  EXPECT_EQ(store.total_response_bytes(), 350u);
}

TEST(RecordStore, SaveLoadRoundTripPreservesOrderAndContent) {
  RecordStore store;
  for (int i = 0; i < 25; ++i) {
    store.add(make_exchange("http://site.test/obj" + std::to_string(i), kA,
                            "body-" + std::to_string(i)));
  }
  const auto dir =
      std::filesystem::temp_directory_path() / "mahi_store_roundtrip";
  std::filesystem::remove_all(dir);
  store.save(dir);
  const RecordStore loaded = RecordStore::load(dir);
  ASSERT_EQ(loaded.size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded.exchanges()[i], store.exchanges()[i]) << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(RecordStore, LoadMissingDirectoryThrows) {
  EXPECT_THROW(RecordStore::load("/nonexistent/recorded_site"),
               std::runtime_error);
}

TEST(RecordStore, LoadCorruptFileThrows) {
  const auto dir = std::filesystem::temp_directory_path() / "mahi_store_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream{dir / "save_0_deadbeef"} << "this is not MahiTLV";
  EXPECT_THROW(RecordStore::load(dir), SerializeError);
  std::filesystem::remove_all(dir);
}

TEST(RecordStore, LoadIgnoresForeignFiles) {
  RecordStore store;
  store.add(make_exchange("http://a.test/1", kA));
  const auto dir = std::filesystem::temp_directory_path() / "mahi_store_foreign";
  std::filesystem::remove_all(dir);
  store.save(dir);
  std::ofstream{dir / "README"} << "not a recording";
  const RecordStore loaded = RecordStore::load(dir);
  EXPECT_EQ(loaded.size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(RecordedExchange, PathAndQueryHelpers) {
  const auto exchange = make_exchange("http://a.test/dir/page?x=1&y=2", kA);
  EXPECT_EQ(exchange.path(), "/dir/page");
  EXPECT_EQ(exchange.query(), "x=1&y=2");
  const auto plain = make_exchange("http://a.test/plain", kA);
  EXPECT_EQ(plain.path(), "/plain");
  EXPECT_EQ(plain.query(), "");
}

}  // namespace
}  // namespace mahimahi::record
