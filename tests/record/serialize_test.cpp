#include "record/serialize.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace mahimahi::record {
namespace {

RecordedExchange sample_exchange() {
  RecordedExchange exchange;
  exchange.request = http::make_get("http://www.example.com/page?a=1&b=2");
  exchange.request.headers.add("User-Agent", "mahimahi-test/1.0");
  exchange.response = http::make_ok("<html>hello</html>");
  exchange.response.headers.add("Set-Cookie", "sid=abc");
  exchange.response.headers.add("Set-Cookie", "theme=dark");
  exchange.scheme = "http";
  exchange.server_address = net::Address{net::Ipv4{93, 184, 216, 34}, 80};
  exchange.recorded_at = 123'456;
  return exchange;
}

TEST(Serialize, RoundTripPreservesEverything) {
  const RecordedExchange original = sample_exchange();
  const std::string encoded = encode_exchange(original);
  const RecordedExchange decoded = decode_exchange(encoded);
  EXPECT_EQ(decoded, original);
}

TEST(Serialize, RoundTripBinaryBody) {
  RecordedExchange exchange = sample_exchange();
  util::Rng rng{3};
  exchange.response.body.clear();
  for (int i = 0; i < 10'000; ++i) {
    exchange.response.body += static_cast<char>(rng.uniform_int(0, 255));
  }
  const RecordedExchange decoded = decode_exchange(encode_exchange(exchange));
  EXPECT_EQ(decoded.response.body, exchange.response.body);
}

TEST(Serialize, PreservesDuplicateHeadersInOrder) {
  const RecordedExchange decoded =
      decode_exchange(encode_exchange(sample_exchange()));
  const auto cookies = decoded.response.headers.get_all("Set-Cookie");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookies[0], "sid=abc");
  EXPECT_EQ(cookies[1], "theme=dark");
}

TEST(Serialize, RejectsBadMagic) {
  EXPECT_THROW(decode_exchange("NOPE rest"), SerializeError);
  EXPECT_THROW(decode_exchange(""), SerializeError);
}

TEST(Serialize, RejectsWrongVersion) {
  std::string encoded = encode_exchange(sample_exchange());
  encoded[4] = 99;  // version byte
  EXPECT_THROW(decode_exchange(encoded), SerializeError);
}

TEST(Serialize, RejectsTruncation) {
  const std::string encoded = encode_exchange(sample_exchange());
  // Any truncation point in the TLV stream must fail loudly, except
  // cutting whole trailing fields — then required-field checks catch it.
  for (const std::size_t keep : {6ul, 10ul, encoded.size() / 2, encoded.size() - 1}) {
    EXPECT_THROW((void)decode_exchange(encoded.substr(0, keep)), SerializeError)
        << "kept " << keep << " bytes";
  }
}

TEST(Serialize, RejectsCorruptLength) {
  std::string encoded = encode_exchange(sample_exchange());
  // Blow up the first field's length (bytes 5..9 little-endian).
  encoded[8] = '\xFF';
  EXPECT_THROW(decode_exchange(encoded), SerializeError);
}

TEST(Serialize, MissingRequiredFieldsRejected) {
  // A stream with only a scheme field: structurally valid TLV but not a
  // complete exchange.
  std::string encoded = encode_exchange(sample_exchange());
  const std::string only_header = encoded.substr(0, 5);  // magic+version
  // One TLV field: tag 0x01, length 4 (little-endian), value "http".
  EXPECT_THROW(decode_exchange(only_header + std::string{"\x01\x04\x00\x00\x00http", 9}),
               SerializeError);
}

TEST(Serialize, DescribeMentionsKeyFacts) {
  const std::string text = describe_exchange(sample_exchange());
  EXPECT_NE(text.find("www.example.com"), std::string::npos);
  EXPECT_NE(text.find("200"), std::string::npos);
  EXPECT_NE(text.find("93.184.216.34:80"), std::string::npos);
}

// Property sweep: random exchanges round-trip for a range of sizes.
class SerializeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRoundTrip, RandomExchange) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 5};
  RecordedExchange exchange;
  exchange.request.method =
      rng.chance(0.5) ? http::Method::kGet : http::Method::kPost;
  exchange.request.target = "/p" + std::to_string(rng.uniform_int(0, 1 << 20));
  exchange.request.headers.add("Host",
                               "h" + std::to_string(GetParam()) + ".test");
  const int header_count = static_cast<int>(rng.uniform_int(0, 20));
  for (int i = 0; i < header_count; ++i) {
    exchange.request.headers.add("X-H" + std::to_string(i),
                                 std::string(rng.uniform_int(0, 64), 'v'));
  }
  exchange.response.status = static_cast<int>(rng.uniform_int(100, 599));
  exchange.response.body.assign(
      static_cast<std::size_t>(rng.uniform_int(0, 50'000)), 'b');
  exchange.server_address =
      net::Address{net::Ipv4{static_cast<std::uint32_t>(rng.next())},
                   static_cast<std::uint16_t>(rng.uniform_int(1, 65535))};
  exchange.scheme = rng.chance(0.3) ? "https" : "http";
  exchange.recorded_at = rng.uniform_int(0, 1'000'000'000);
  EXPECT_EQ(decode_exchange(encode_exchange(exchange)), exchange);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerializeRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace mahimahi::record
