// The journal layer's durability contract: framed records round-trip,
// torn tails and corrupt frames are detected and cut, manifests pin a
// run's identity and name the first mismatching field.

#include "journal/journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mahimahi::journal {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Journal, Crc32MatchesKnownVector) {
  // The IEEE check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
  EXPECT_EQ(crc32(""), 0x00000000U);
}

TEST(Journal, RecordsRoundTripThroughTheFile) {
  const fs::path dir = fresh_dir("mahi_journal_roundtrip");
  {
    Writer writer{dir.string(), 0};
    EXPECT_TRUE(writer.append("alpha"));
    EXPECT_TRUE(writer.append(""));  // empty payloads are legal
    EXPECT_TRUE(writer.append(std::string(3000, 'x')));
    EXPECT_EQ(writer.records_appended(), 3u);
  }
  const ReadResult read = read_journal_file(Writer::journal_path(dir.string()));
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0], "alpha");
  EXPECT_EQ(read.records[1], "");
  EXPECT_EQ(read.records[2], std::string(3000, 'x'));
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes,
            fs::file_size(Writer::journal_path(dir.string())));
}

TEST(Journal, MissingFileReadsAsEmpty) {
  const ReadResult read = read_journal_file("/nonexistent/journal.bin");
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(read.valid_bytes, 0u);
  EXPECT_FALSE(read.torn_tail);
}

TEST(Journal, TornTailIsDetectedAndDropped) {
  const fs::path dir = fresh_dir("mahi_journal_torn");
  {
    Writer writer{dir.string(), 0};
    writer.append("first");
    writer.append("second");
  }
  const std::string path = Writer::journal_path(dir.string());
  const std::uintmax_t full = fs::file_size(path);
  // Simulate a SIGKILL mid-append: cut the file inside the last record.
  fs::resize_file(path, full - 3);
  const ReadResult read = read_journal_file(path);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0], "first");
  EXPECT_TRUE(read.torn_tail);
  EXPECT_LT(read.valid_bytes, full - 3);

  // Reopening for append truncates the tail away and appends cleanly.
  {
    Writer writer{dir.string(), read.valid_bytes};
    writer.append("third");
  }
  const ReadResult healed = read_journal_file(path);
  ASSERT_EQ(healed.records.size(), 2u);
  EXPECT_EQ(healed.records[0], "first");
  EXPECT_EQ(healed.records[1], "third");
  EXPECT_FALSE(healed.torn_tail);
}

TEST(Journal, CorruptPayloadStopsTheScan) {
  const fs::path dir = fresh_dir("mahi_journal_corrupt");
  {
    Writer writer{dir.string(), 0};
    writer.append("kept");
    writer.append("flipped");
  }
  const std::string path = Writer::journal_path(dir.string());
  std::string bytes = read_bytes(path);
  // Flip one payload byte of the second record: its CRC no longer
  // matches, so the scan must stop before it.
  bytes[bytes.size() - 1] ^= 0x01;
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << bytes;
  }
  const ReadResult read = read_journal_file(path);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0], "kept");
  EXPECT_TRUE(read.torn_tail);
}

TEST(Journal, ManifestRoundTripsAndNamesTheFirstMismatch) {
  Manifest a;
  a.set("name", "smoke");
  a.set("seed", "4242");
  a.set("matrix-hash", "abc123");

  const std::string text = a.serialize();
  EXPECT_EQ(text.rfind("mahimahi-journal-v1\n", 0), 0u);
  const Manifest parsed = Manifest::parse(text);
  EXPECT_EQ(parsed.get("name"), "smoke");
  EXPECT_EQ(parsed.get("seed"), "4242");
  EXPECT_EQ(a.first_mismatch(parsed), "");

  Manifest b = parsed;
  b.set("seed", "9");
  EXPECT_EQ(a.first_mismatch(b), "seed");
  // A key present on only one side is a mismatch too (schema drift).
  Manifest c = parsed;
  c.set("extra", "1");
  EXPECT_EQ(a.first_mismatch(c), "extra");
}

TEST(Journal, ManifestRejectsForeignSchema) {
  EXPECT_THROW(Manifest::parse("not-a-journal\nx y\n"), std::runtime_error);
  EXPECT_THROW(Manifest::parse(""), std::runtime_error);
}

TEST(Journal, ManifestFileRoundTripsAtomically) {
  const fs::path dir = fresh_dir("mahi_journal_manifest");
  Manifest manifest;
  manifest.set("name", "x");
  manifest.set("toolchain", toolchain_fingerprint());
  ASSERT_TRUE(write_manifest(dir.string(), manifest));
  // No temp file left behind by the atomic write.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  const Manifest read = read_manifest(dir.string());
  EXPECT_EQ(read.first_mismatch(manifest), "");
  EXPECT_THROW(read_manifest((dir / "nope").string()), std::runtime_error);
}

TEST(Journal, CodecRoundTripsEveryPrimitive) {
  std::string out;
  put_u8(out, 0xAB);
  put_u32(out, 0xDEADBEEFU);
  put_u64(out, 0x0123456789ABCDEFULL);
  put_i64(out, -42);
  put_double(out, 3.141592653589793);
  put_double(out, -0.0);
  put_string(out, "hello\0world");  // literal truncates at NUL — fine
  put_string(out, "");

  Cursor in{out};
  EXPECT_EQ(in.get_u8(), 0xAB);
  EXPECT_EQ(in.get_u32(), 0xDEADBEEFU);
  EXPECT_EQ(in.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(in.get_i64(), -42);
  EXPECT_EQ(in.get_double(), 3.141592653589793);
  const double negative_zero = in.get_double();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));  // bit-exact, not value-equal
  EXPECT_EQ(in.get_string(), "hello");
  EXPECT_EQ(in.get_string(), "");
  EXPECT_TRUE(in.exhausted());
}

TEST(Journal, CursorThrowsOnUnderrun) {
  std::string out;
  put_u32(out, 7);
  Cursor in{out};
  EXPECT_EQ(in.get_u32(), 7u);
  EXPECT_THROW(in.get_u8(), std::runtime_error);
  // A length prefix pointing past the end must throw, not read garbage.
  std::string bad;
  put_u32(bad, 1000);
  Cursor cursor{bad};
  EXPECT_THROW(cursor.get_string(), std::runtime_error);
}

}  // namespace
}  // namespace mahimahi::journal
