// Property sweeps over shell compositions: page load time must respond
// monotonically to each emulation knob, and composition must be additive.

#include <gtest/gtest.h>

#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"

namespace mahimahi::core {
namespace {

using namespace mahimahi::literals;

const corpus::GeneratedSite& shared_site() {
  static const corpus::GeneratedSite site = [] {
    corpus::SiteSpec spec;
    spec.name = "prop";
    spec.seed = 41;
    spec.server_count = 8;
    spec.object_count = 40;
    return corpus::generate_site(spec);
  }();
  return site;
}

const record::RecordStore& shared_store() {
  static const record::RecordStore store = [] {
    SessionConfig config;
    config.seed = 4;
    RecordSession recorder{shared_site(), corpus::LiveWebConfig{}, config};
    return recorder.record();
  }();
  return store;
}

SessionConfig base_config() {
  SessionConfig config;
  config.seed = 4;
  config.browser.per_object_overhead = 500;
  config.browser.final_layout_cost = 1'000;
  config.browser.compute_jitter_sigma = 0.0;  // pure network response
  return config;
}

Microseconds plt_under(const std::vector<ShellSpec>& shells) {
  auto config = base_config();
  config.shells = shells;
  ReplaySession session{shared_store(), config};
  const auto result = session.load_once(shared_site().primary_url(), 0);
  EXPECT_TRUE(result.success);
  return result.page_load_time;
}

class DelayMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(DelayMonotonicity, MoreDelayNeverFaster) {
  const Microseconds lo = GetParam() * 1'000;
  const Microseconds hi = lo + 20'000;
  EXPECT_LT(plt_under({DelayShellSpec{lo}}), plt_under({DelayShellSpec{hi}}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DelayMonotonicity,
                         ::testing::Values(0, 10, 40, 100, 250));

class RateMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(RateMonotonicity, MoreBandwidthNeverSlower) {
  const double lo_mbps = GetParam();
  const double hi_mbps = lo_mbps * 4;
  const auto slow = plt_under({DelayShellSpec{20_ms},
                               LinkShellSpec::constant_rate_mbps(lo_mbps, lo_mbps)});
  const auto fast = plt_under({DelayShellSpec{20_ms},
                               LinkShellSpec::constant_rate_mbps(hi_mbps, hi_mbps)});
  EXPECT_GT(slow, fast);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RateMonotonicity, ::testing::Values(1, 2, 5, 10));

TEST(ShellProperties, DelayComposesAdditively) {
  // Two nested delay shells equal one shell with the summed delay, up to
  // per-shell forwarding overhead.
  auto config_a = base_config();
  config_a.host.delay_shell_packet_cost = 0;
  config_a.shells = {DelayShellSpec{30_ms}, DelayShellSpec{20_ms}};
  ReplaySession nested{shared_store(), config_a};

  auto config_b = base_config();
  config_b.host.delay_shell_packet_cost = 0;
  config_b.shells = {DelayShellSpec{50_ms}};
  ReplaySession flat{shared_store(), config_b};

  const auto nested_plt =
      nested.load_once(shared_site().primary_url(), 0).page_load_time;
  const auto flat_plt =
      flat.load_once(shared_site().primary_url(), 0).page_load_time;
  EXPECT_EQ(nested_plt, flat_plt);
}

TEST(ShellProperties, LinkBottleneckDominates) {
  // A fast link nested inside a slow link behaves like the slow link.
  const auto slow_only =
      plt_under({LinkShellSpec::constant_rate_mbps(2, 2)});
  const auto fast_inside_slow =
      plt_under({LinkShellSpec::constant_rate_mbps(2, 2),
                 LinkShellSpec::constant_rate_mbps(100, 100)});
  // Equal within the fast link's forwarding overhead (a few percent).
  const double ratio = static_cast<double>(fast_inside_slow) /
                       static_cast<double>(slow_only);
  EXPECT_GT(ratio, 0.98);
  EXPECT_LT(ratio, 1.10);
}

TEST(ShellProperties, LossDegradesMonotonically) {
  // Rates kept moderate: above ~10%, a DNS exchange (3 tries of 2 packets
  // each) can legitimately die, which is a failure-injection scenario, not
  // a monotonicity one (tests/integration covers it).
  auto config = base_config();
  config.browser.stall_timeout = 120'000'000;
  Microseconds previous = 0;
  for (const double loss : {0.0, 0.03, 0.08}) {
    config.shells = {DelayShellSpec{10_ms}, LossShellSpec{loss, loss}};
    ReplaySession session{shared_store(), config};
    const auto result = session.load_once(shared_site().primary_url(), 0);
    EXPECT_TRUE(result.success) << "loss " << loss;
    EXPECT_GT(result.page_load_time, previous) << "loss " << loss;
    previous = result.page_load_time;
  }
}

TEST(ShellProperties, SeedChangesJitterNotOutcome) {
  // Different seeds give different PLTs (jitter) but identical object
  // counts and byte totals (the page itself is deterministic).
  auto config = base_config();
  config.browser.compute_jitter_sigma = 0.05;
  ReplaySession a{shared_store(), config};
  auto config_b = config;
  config_b.seed = 5;
  ReplaySession b{shared_store(), config_b};
  const auto ra = a.load_once(shared_site().primary_url(), 0);
  const auto rb = b.load_once(shared_site().primary_url(), 0);
  EXPECT_NE(ra.page_load_time, rb.page_load_time);
  EXPECT_EQ(ra.objects_loaded, rb.objects_loaded);
  EXPECT_EQ(ra.bytes_downloaded, rb.bytes_downloaded);
}

}  // namespace
}  // namespace mahimahi::core
