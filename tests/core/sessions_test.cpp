#include "core/sessions.hpp"

#include <gtest/gtest.h>

#include "corpus/site_generator.hpp"

namespace mahimahi::core {
namespace {

using namespace mahimahi::literals;

corpus::SiteSpec tiny_spec() {
  corpus::SiteSpec spec;
  spec.name = "sess";
  spec.seed = 17;
  spec.server_count = 5;
  spec.object_count = 25;
  return spec;
}

SessionConfig quick_config(std::uint64_t seed = 9) {
  SessionConfig config;
  config.seed = seed;
  config.browser.per_object_overhead = 500;
  config.browser.final_layout_cost = 1'000;
  return config;
}

TEST(ScaledBrowser, ScalesComputeFieldsOnly) {
  web::BrowserConfig base;
  HostProfile host;
  host.compute_scale = 2.0;
  const auto scaled = scaled_browser(base, host);
  EXPECT_DOUBLE_EQ(scaled.js_exec_us_per_byte, base.js_exec_us_per_byte * 2.0);
  EXPECT_DOUBLE_EQ(scaled.html_parse_us_per_byte,
                   base.html_parse_us_per_byte * 2.0);
  EXPECT_EQ(scaled.per_object_overhead, base.per_object_overhead * 2);
  EXPECT_EQ(scaled.final_layout_cost, base.final_layout_cost * 2);
  // Non-compute fields untouched.
  EXPECT_EQ(scaled.max_connections_per_origin, base.max_connections_per_origin);
  EXPECT_EQ(scaled.max_concurrent_requests, base.max_concurrent_requests);
}

TEST(ReplaySession, LossShellStillCompletesLoads) {
  const auto site = corpus::generate_site(tiny_spec());
  RecordSession recorder{site, corpus::LiveWebConfig{}, quick_config()};
  const auto store = recorder.record();

  auto config = quick_config();
  config.shells = {DelayShellSpec{10_ms}, LossShellSpec{0.05, 0.05}};
  ReplaySession session{store, config};
  const auto result = session.load_once(site.primary_url(), 0);
  EXPECT_TRUE(result.success);  // TCP recovers every loss
  EXPECT_EQ(result.objects_loaded, site.objects.size());
}

TEST(ReplaySession, MachineProfilesAgreeClosely) {
  const auto site = corpus::generate_site(tiny_spec());
  RecordSession recorder{site, corpus::LiveWebConfig{}, quick_config()};
  const auto store = recorder.record();

  double means[2];
  int m = 0;
  for (const auto& host : {HostProfile::machine1(), HostProfile::machine2()}) {
    auto config = quick_config();
    config.host = host;
    ReplaySession session{store, config};
    means[m++] = session.measure(site.primary_url(), 10).mean();
  }
  // Table 1's property: different machines, near-identical means.
  EXPECT_NEAR(means[0], means[1], means[0] * 0.01);
  EXPECT_NE(means[0], means[1]);  // but not bit-identical (different salt)
}

TEST(ReplaySession, SingleServerSlowerOnFatLowLatencyLink) {
  const auto site = corpus::generate_site(tiny_spec());
  RecordSession recorder{site, corpus::LiveWebConfig{}, quick_config()};
  const auto store = recorder.record();

  auto config = quick_config();
  config.shells = {DelayShellSpec{15_ms},
                   LinkShellSpec::constant_rate_mbps(25, 25)};
  ReplaySession multi{store, config};
  ReplaySession::Options so;
  so.single_server = true;
  ReplaySession single{store, config, so};
  const auto m = multi.load_once(site.primary_url(), 0).page_load_time;
  const auto s = single.load_once(site.primary_url(), 0).page_load_time;
  EXPECT_GT(s, m);
}

TEST(RecordSession, ShellsApplyToRecordingPath) {
  // Recording through a slow link is slower than recording bare, and both
  // capture the same exchanges.
  const auto site = corpus::generate_site(tiny_spec());

  web::PageLoadResult bare_result;
  RecordSession bare{site, corpus::LiveWebConfig{}, quick_config()};
  const auto bare_store = bare.record(&bare_result);

  auto slow_config = quick_config();
  slow_config.shells = {LinkShellSpec::constant_rate_mbps(2, 2)};
  web::PageLoadResult slow_result;
  RecordSession slow{site, corpus::LiveWebConfig{}, slow_config};
  const auto slow_store = slow.record(&slow_result);

  EXPECT_EQ(bare_store.size(), slow_store.size());
  EXPECT_GT(slow_result.page_load_time, bare_result.page_load_time);
}

TEST(LiveWebSession, RttVariesAcrossLoads) {
  const auto site = corpus::generate_site(tiny_spec());
  LiveWebSession live{site, corpus::LiveWebConfig{}, quick_config()};
  (void)live.load_once(0);
  const auto rtt0 = live.last_primary_rtt();
  (void)live.load_once(1);
  const auto rtt1 = live.last_primary_rtt();
  EXPECT_GT(rtt0, 0);
  EXPECT_NE(rtt0, rtt1);  // weather redraw
}

TEST(ReplaySession, BrowserConnectionCapBindsPageParallelism) {
  const auto site = corpus::generate_site(tiny_spec());
  RecordSession recorder{site, corpus::LiveWebConfig{}, quick_config()};
  const auto store = recorder.record();

  auto throttled = quick_config();
  throttled.browser.max_concurrent_requests = 2;
  ReplaySession narrow{store, throttled};
  const auto result = narrow.load_once(site.primary_url(), 0);
  EXPECT_TRUE(result.success);
  // At most `cap` connections can be *created* per origin pool (a new
  // socket is only opened for an issued request), so the total is bounded
  // by origins x cap even though sockets persist across requests.
  EXPECT_LE(result.connections_opened, site.hostnames.size() * 2);

  ReplaySession wide{store, quick_config()};
  const auto wide_result = wide.load_once(site.primary_url(), 0);
  EXPECT_GT(wide_result.connections_opened, result.connections_opened);
}

}  // namespace
}  // namespace mahimahi::core
