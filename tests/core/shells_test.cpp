#include "core/shells.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "trace/synthesis.hpp"

namespace mahimahi::core {
namespace {

using namespace mahimahi::literals;

net::Packet probe(std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.src = net::Address{net::Ipv4{100, 64, 0, 2}, 50000};
  p.dst = net::Address{net::Ipv4{10, 0, 0, 1}, 80};
  p.tcp.payload = std::string(100, 'x');
  return p;
}

struct ShellHarness {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  std::vector<Microseconds> deliveries;

  explicit ShellHarness(const std::vector<ShellSpec>& shells,
                        HostProfile host = {}) {
    util::Rng rng{5};
    apply_shells(fabric, shells, host, rng);
    fabric.bind(net::Side::kServer, net::Address{net::Ipv4{10, 0, 0, 1}, 80},
                [this](net::Packet&&) { deliveries.push_back(loop.now()); });
  }

  void send_probe(std::uint64_t id) {
    fabric.send(net::Side::kClient, probe(id));
  }
};

TEST(ApplyShells, EmptyStackForwardsWithNoDelay) {
  ShellHarness h{{}};
  h.send_probe(1);
  h.loop.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 0);
}

TEST(ApplyShells, DelayShellAddsOneWayDelayPlusForwardingCost) {
  HostProfile host;
  host.delay_shell_packet_cost = 3;
  ShellHarness h{{DelayShellSpec{30_ms}}, host};
  h.send_probe(1);
  h.loop.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 30_ms + 3);
}

TEST(ApplyShells, NestedDelaysCompose) {
  HostProfile host;
  host.delay_shell_packet_cost = 0;
  ShellHarness h{{DelayShellSpec{10_ms}, DelayShellSpec{20_ms}}, host};
  h.send_probe(1);
  h.loop.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 30_ms);
}

TEST(ApplyShells, ZeroDelayShellStillChargesForwardingCost) {
  // The Figure 2 experiment: DelayShell 0 ms is not free.
  HostProfile host;
  host.delay_shell_packet_cost = 5;
  ShellHarness h{{DelayShellSpec{0}}, host};
  h.send_probe(1);
  h.loop.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 5);
}

TEST(ApplyShells, LinkShellQuantizesToOpportunities) {
  HostProfile host;
  host.link_shell_packet_cost = 0;
  LinkShellSpec link;
  link.uplink = std::make_shared<const trace::PacketTrace>(
      trace::PacketTrace{{10_ms, 20_ms}});
  link.downlink = link.uplink;
  ShellHarness h{{link}, host};
  h.send_probe(1);
  h.loop.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 10_ms);  // waits for the first opportunity
}

TEST(ApplyShells, LossShellDropsDeterministically) {
  HostProfile host;
  host.loss_shell_packet_cost = 0;
  ShellHarness h{{LossShellSpec{1.0, 0.0}}, host};  // 100% uplink loss
  for (int i = 0; i < 10; ++i) {
    h.send_probe(static_cast<std::uint64_t>(i));
  }
  h.loop.run();
  EXPECT_TRUE(h.deliveries.empty());
}

TEST(ApplyShells, CommandLineOrderMeansLastIsInnermost) {
  // {delay 10ms, link{50ms opportunities}}: app -> link -> delay.
  // A packet sent at t=0 reaches the link first (waits to 50ms), then the
  // delay (adds 10ms) => arrives 60ms. If the order were reversed the
  // packet would hit delay first (10ms), then wait for the 50ms
  // opportunity => 50ms. Distinguishes the two.
  HostProfile host;
  host.delay_shell_packet_cost = 0;
  host.link_shell_packet_cost = 0;
  LinkShellSpec link;
  link.uplink = std::make_shared<const trace::PacketTrace>(
      trace::PacketTrace{{50_ms, 100_ms}});
  link.downlink = link.uplink;
  ShellHarness h{{DelayShellSpec{10_ms}, link}, host};
  h.send_probe(1);
  h.loop.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0], 60_ms);
}

TEST(LinkShellSpec, ConstantRateFactory) {
  const auto spec = LinkShellSpec::constant_rate_mbps(8.0, 1.0);
  ASSERT_NE(spec.uplink, nullptr);
  ASSERT_NE(spec.downlink, nullptr);
  EXPECT_NEAR(spec.uplink->average_bits_per_second(), 8e6, 8e4);
  EXPECT_NEAR(spec.downlink->average_bits_per_second(), 1e6, 1e4);
}

TEST(HostProfile, MachinesDifferButSlightly) {
  const auto m1 = HostProfile::machine1();
  const auto m2 = HostProfile::machine2();
  EXPECT_NE(m1.seed_salt, m2.seed_salt);
  EXPECT_NEAR(m2.compute_scale, m1.compute_scale, 0.01);  // <1% apart
}

}  // namespace
}  // namespace mahimahi::core
