// The parallel measurement engine's contract: index-ordered merge, bit-
// identical output at any thread count, and failure containment — an
// exception in one task never disturbs its siblings.

#include "core/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"

namespace mahimahi::core {
namespace {

corpus::SiteSpec tiny_spec() {
  corpus::SiteSpec spec;
  spec.name = "runner";
  spec.seed = 23;
  spec.server_count = 4;
  spec.object_count = 16;
  return spec;
}

SessionConfig quick_config(std::uint64_t seed = 11) {
  SessionConfig config;
  config.seed = seed;
  config.browser.per_object_overhead = 500;
  config.browser.final_layout_cost = 1'000;
  return config;
}

TEST(ParallelRunner, MapMergesResultsInIndexOrder) {
  ParallelRunner runner{4};
  const auto results = runner.map(64, [](int i) { return i * 3; });
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 3);
  }
}

TEST(ParallelRunner, MapSamplesPreservesLoadIndexOrder) {
  ParallelRunner runner{8};
  const auto samples = runner.map_samples(100, [](int i) {
    return static_cast<double>(i);  // identity: order is observable
  });
  ASSERT_EQ(samples.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(samples.values()[i], static_cast<double>(i));
  }
}

TEST(ParallelRunner, EmptyAndNegativeCountsAreNoOps) {
  ParallelRunner runner{2};
  EXPECT_TRUE(runner.map(0, [](int i) { return i; }).empty());
  EXPECT_TRUE(runner.map(-3, [](int i) { return i; }).empty());
}

TEST(ParallelRunner, SameSeedSameUrlIsByteIdenticalAcrossThreadCounts) {
  // The PR's headline property (and Table 1's): same seed + same URL must
  // give byte-identical Samples at 1, 2, and 8 threads.
  const auto site = corpus::generate_site(tiny_spec());
  RecordSession recorder{site, corpus::LiveWebConfig{}, quick_config()};
  const auto store = recorder.record();

  auto config = quick_config();
  config.shells = {DelayShellSpec{10'000},
                   LinkShellSpec::constant_rate_mbps(6, 6)};
  ReplaySession session{store, config};

  ParallelRunner one{1};
  const auto baseline = session.measure(site.primary_url(), 12, one);
  ASSERT_EQ(baseline.size(), 12u);

  for (const int threads : {2, 8}) {
    ParallelRunner runner{threads};
    const auto samples = session.measure(site.primary_url(), 12, runner);
    EXPECT_EQ(baseline.values(), samples.values())
        << "thread count " << threads << " diverged from sequential";
  }
}

TEST(ParallelRunner, LiveWebMeasureIsByteIdenticalAcrossThreadCounts) {
  const auto site = corpus::generate_site(tiny_spec());
  LiveWebSession live{site, corpus::LiveWebConfig{}, quick_config()};

  ParallelRunner one{1};
  const auto baseline = live.measure(10, one);
  const auto rtt_baseline = live.last_primary_rtt();

  ParallelRunner four{4};
  const auto samples = live.measure(10, four);
  EXPECT_EQ(baseline.values(), samples.values());
  // last_primary_rtt matches the sequential run's final load, too.
  EXPECT_EQ(live.last_primary_rtt(), rtt_baseline);
}

TEST(ParallelRunner, ExceptionInOneTaskDoesNotPoisonSiblings) {
  ParallelRunner runner{4};
  std::atomic<int> completed{0};
  try {
    runner.map(32, [&completed](int i) {
      if (i == 7) {
        throw std::runtime_error{"task 7 failed"};
      }
      completed.fetch_add(1, std::memory_order_relaxed);
      return i;
    });
    FAIL() << "expected the task's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // Every sibling ran to completion despite the failure.
  EXPECT_EQ(completed.load(), 31);
}

TEST(ParallelRunner, LowestIndexExceptionWinsDeterministically) {
  ParallelRunner runner{8};
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      runner.map(64, [](int i) {
        if (i % 9 == 5) {  // several failing indices: 5, 14, 23, ...
          throw std::runtime_error{"task " + std::to_string(i)};
        }
        return i;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5");  // always the lowest failing index
    }
  }
}

TEST(ParallelRunner, RunnerIsReusableAcrossBatches) {
  ParallelRunner runner{3};
  for (int batch = 0; batch < 10; ++batch) {
    const auto results =
        runner.map(20, [batch](int i) { return batch * 100 + i; });
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(i)], batch * 100 + i);
    }
  }
}

TEST(ParallelRunner, DefaultThreadCountHonoursEnvOverride) {
  // MAHI_THREADS wins; absent or invalid values fall back to hardware.
  ASSERT_EQ(setenv("MAHI_THREADS", "3", 1), 0);
  EXPECT_EQ(ParallelRunner::default_thread_count(), 3);
  ASSERT_EQ(setenv("MAHI_THREADS", "0", 1), 0);
  EXPECT_GE(ParallelRunner::default_thread_count(), 1);
  ASSERT_EQ(unsetenv("MAHI_THREADS"), 0);
  EXPECT_GE(ParallelRunner::default_thread_count(), 1);
}

}  // namespace
}  // namespace mahimahi::core
