// Controller dynamics pinned by deterministic event replay: each test
// feeds a fixed script of ack/loss/RTO/RTT events straight through the
// cc::CongestionController interface (no fabric, no transport) and checks
// the resulting cwnd trajectory. The Reno trajectory is golden — exact
// doubles, hand-computed — because RenoNewReno must be a
// behavior-preserving port of the window arithmetic that used to live in
// net::TcpConnection.

#include <gtest/gtest.h>

#include <cmath>

#include "cc/bbr_lite.hpp"
#include "cc/cubic.hpp"
#include "cc/registry.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"

namespace mahimahi::cc {
namespace {

constexpr double kMss = 1448.0;

Params test_params() {
  Params params;
  params.mss_bytes = kMss;
  params.initial_cwnd_bytes = 10 * kMss;  // IW10
  return params;
}

AckEvent new_ack(std::uint64_t bytes, Microseconds now,
                 std::uint64_t in_flight = 0) {
  AckEvent ack;
  ack.newly_acked_bytes = bytes;
  ack.bytes_in_flight = in_flight;
  ack.now = now;
  return ack;
}

AckEvent dup_ack(bool in_recovery, Microseconds now) {
  AckEvent ack;
  ack.is_duplicate = true;
  ack.in_recovery = in_recovery;
  ack.now = now;
  return ack;
}

TEST(RenoGolden, ScriptedTrajectoryMatchesHandComputedWindows) {
  RenoNewReno reno{test_params()};
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 10 * kMss);
  EXPECT_DOUBLE_EQ(reno.ssthresh_bytes(), kInfiniteSsthresh);

  // Slow start: ten full-MSS acks double the window (ABC growth).
  Microseconds now = 1'000;
  for (int i = 0; i < 10; ++i) {
    reno.on_ack(new_ack(1448, now += 1'000));
  }
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 20 * kMss);  // 28960

  // Loss with 28960 bytes in flight: ssthresh = flight/2, window jumps to
  // ssthresh + 3 MSS (the three dupacks that triggered detection).
  LossEvent loss;
  loss.bytes_in_flight = 28'960;
  loss.now = now += 1'000;
  reno.on_loss_event(loss);
  EXPECT_DOUBLE_EQ(reno.ssthresh_bytes(), 14'480.0);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 14'480.0 + 3 * kMss);  // 18824

  // Dupack during recovery inflates by one MSS.
  reno.on_ack(dup_ack(/*in_recovery=*/true, now += 1'000));
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 18'824.0 + kMss);  // 20272

  // A dupack outside recovery must not move the window.
  const double before = reno.cwnd_bytes();
  reno.on_ack(dup_ack(/*in_recovery=*/false, now += 1'000));
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), before);

  // NewReno partial ack: deflate by acked bytes, re-inflate one MSS.
  AckEvent partial = new_ack(1448, now += 1'000);
  partial.in_recovery = true;
  reno.on_ack(partial);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 20'272.0);  // -1448 + 1448

  // Full ack exits recovery at exactly ssthresh.
  AckEvent exit_ack = new_ack(2896, now += 1'000);
  exit_ack.exiting_recovery = true;
  reno.on_ack(exit_ack);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 14'480.0);

  // Congestion avoidance: one ack adds MSS^2 / cwnd bytes.
  reno.on_ack(new_ack(1448, now += 1'000));
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 14'480.0 + kMss * kMss / 14'480.0);

  // RTO: ssthresh = flight/2, window collapses to one segment.
  RtoEvent rto;
  rto.bytes_in_flight = 14'480;
  rto.now = now += 1'000;
  reno.on_rto(rto);
  EXPECT_DOUBLE_EQ(reno.ssthresh_bytes(), 7'240.0);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), kMss);

  // And slow start resumes from there.
  reno.on_ack(new_ack(1448, now += 1'000));
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 2 * kMss);
}

TEST(RenoGolden, LossFloorsAtTwoSegments) {
  RenoNewReno reno{test_params()};
  LossEvent loss;
  loss.bytes_in_flight = 100;  // tiny flight: the /2 would undershoot
  loss.now = 1'000;
  reno.on_loss_event(loss);
  EXPECT_DOUBLE_EQ(reno.ssthresh_bytes(), 2 * kMss);
  EXPECT_DOUBLE_EQ(reno.cwnd_bytes(), 5 * kMss);
}

TEST(CubicDynamics, MultiplicativeDecreaseIsBeta) {
  Cubic cubic{test_params()};
  // Grow to 100 segments in slow start.
  for (int i = 0; i < 90; ++i) {
    cubic.on_ack(new_ack(1448, 1'000 * (i + 1)));
  }
  const double at_loss = cubic.cwnd_bytes();
  EXPECT_DOUBLE_EQ(at_loss, 100 * kMss);

  LossEvent loss;
  loss.bytes_in_flight = static_cast<std::uint64_t>(at_loss);
  loss.now = 100'000;
  cubic.on_loss_event(loss);
  EXPECT_DOUBLE_EQ(cubic.ssthresh_bytes(), at_loss * Cubic::kBeta);

  AckEvent exit_ack = new_ack(1448, 101'000);
  exit_ack.exiting_recovery = true;
  cubic.on_ack(exit_ack);
  EXPECT_DOUBLE_EQ(cubic.cwnd_bytes(), at_loss * Cubic::kBeta);
}

TEST(CubicDynamics, RegrowsToLossPointFasterThanReno) {
  // After a loss at 200 segments on a 400 ms RTT path, Reno needs
  // (200 - 140) RTTs = 24 s to re-fill the pipe; CUBIC's K is
  // cbrt(200 * 0.3 / 0.4) ~ 5.3 s. Replay identical ack clocks through
  // both and compare the time each takes to reach the old loss point.
  const double target = 200 * kMss;
  const Microseconds rtt = 400'000;

  Microseconds cubic_reached = 0;
  Microseconds reno_reached = 0;
  for (const bool use_cubic : {true, false}) {
    Params params = test_params();
    std::unique_ptr<CongestionController> controller;
    if (use_cubic) {
      controller = std::make_unique<Cubic>(params);
    } else {
      controller = std::make_unique<RenoNewReno>(params);
    }
    // Reach 200 segments in slow start, then lose.
    Microseconds now = 0;
    for (int i = 0; i < 190; ++i) {
      controller->on_ack(new_ack(1448, now += 2'000));
    }
    LossEvent loss;
    loss.bytes_in_flight = static_cast<std::uint64_t>(target);
    loss.now = now;
    controller->on_loss_event(loss);
    AckEvent exit_ack = new_ack(1448, now += 1'000);
    exit_ack.exiting_recovery = true;
    controller->on_ack(exit_ack);

    // Ack clock: one full window of acks per RTT, window-paced. Stop when
    // the controller regains the pre-loss window (or after 120 s).
    controller->on_rtt_sample(rtt, now);
    Microseconds reached = 0;
    while (reached == 0 && now < 120'000'000) {
      const int acks_this_rtt =
          std::max(1, static_cast<int>(controller->cwnd_bytes() / kMss));
      const Microseconds spacing = rtt / acks_this_rtt;
      for (int i = 0; i < acks_this_rtt; ++i) {
        controller->on_ack(new_ack(1448, now += std::max<Microseconds>(spacing, 1)));
        if (controller->cwnd_bytes() >= target) {
          reached = now;
          break;
        }
      }
      controller->on_rtt_sample(rtt, now);
    }
    ASSERT_GT(reached, 0) << (use_cubic ? "cubic" : "reno")
                          << " never regained the loss-point window";
    (use_cubic ? cubic_reached : reno_reached) = reached;
  }
  // CUBIC should re-fill the high-BDP pipe at least 2x sooner.
  EXPECT_LT(cubic_reached * 2, reno_reached)
      << "cubic " << cubic_reached << " us vs reno " << reno_reached << " us";
}

TEST(VegasDynamics, ExitsSlowStartWhenQueueBuildsAndHoldsNearBdp) {
  Vegas vegas{test_params()};
  Microseconds now = 0;

  // Propagation delay 100 ms.
  vegas.on_rtt_sample(100'000, now);
  EXPECT_EQ(vegas.base_rtt(), 100'000);

  // RTT inflating to 150 ms: backlog = cwnd * 50/150 >> gamma, so slow
  // start must end without a loss, on a window near cwnd * base/rtt.
  for (int i = 0; i < 40 && vegas.ssthresh_bytes() == kInfiniteSsthresh; ++i) {
    now += 25'000;
    vegas.on_rtt_sample(150'000, now);
    vegas.on_ack(new_ack(1448, now));
  }
  EXPECT_LT(vegas.ssthresh_bytes(), kInfiniteSsthresh)
      << "slow start never exited despite standing queue";
  const double after_exit = vegas.cwnd_bytes();
  EXPECT_LE(after_exit, 12 * kMss);  // no blow-up past IW10 + trim margin

  // With RTT back at base (queue drained), Vegas probes gently upward...
  for (int i = 0; i < 40; ++i) {
    now += 50'000;
    vegas.on_rtt_sample(101'000, now);
    vegas.on_ack(new_ack(1448, now));
  }
  EXPECT_GT(vegas.cwnd_bytes(), after_exit);

  // ...and backs off when the queue reappears (RTT 2x base).
  const double before_queue = vegas.cwnd_bytes();
  for (int i = 0; i < 40; ++i) {
    now += 50'000;
    vegas.on_rtt_sample(200'000, now);
    vegas.on_ack(new_ack(1448, now));
  }
  EXPECT_LT(vegas.cwnd_bytes(), before_queue);
  EXPECT_GE(vegas.cwnd_bytes(), 2 * kMss);
}

TEST(BbrLiteDynamics, PhasesAdvanceAndModelTracksPath) {
  BbrLite bbr{test_params()};
  EXPECT_EQ(bbr.phase(), BbrLite::Phase::kStartup);
  EXPECT_DOUBLE_EQ(bbr.pacing_rate(), 0.0);  // no estimate yet: unpaced

  // Path: 50 ms RTT, ~290 kB/s of acked data (20 MSS per RTT).
  const Microseconds rtt = 50'000;
  Microseconds now = 0;
  const auto run_epochs = [&](int epochs, std::uint64_t in_flight) {
    for (int e = 0; e < epochs; ++e) {
      bbr.on_rtt_sample(rtt, now);
      for (int i = 0; i < 20; ++i) {
        now += rtt / 20;
        bbr.on_ack(new_ack(1448, now, in_flight));
      }
    }
  };

  run_epochs(1, 100'000);
  EXPECT_GT(bbr.pacing_rate(), 0.0);  // handshake sample seeded the filter
  EXPECT_EQ(bbr.min_rtt(), rtt);

  // Delivery rate stays flat, so startup detects the plateau and drains.
  run_epochs(8, 100'000);
  EXPECT_NE(bbr.phase(), BbrLite::Phase::kStartup);

  // Once inflight falls to the BDP, steady-state probing begins.
  run_epochs(4, 1'000);
  EXPECT_EQ(bbr.phase(), BbrLite::Phase::kProbeBw);

  // The model should track the true delivery rate (~289.6 kB/s) within
  // the probe gain's swing, and the cwnd cap should sit near 2x BDP.
  const double true_rate = 20 * 1448.0 / 0.05;
  EXPECT_GT(bbr.bandwidth_estimate(), true_rate * 0.7);
  EXPECT_LT(bbr.bandwidth_estimate(), true_rate * 1.6);
  const double bdp = bbr.bandwidth_estimate() * 0.05;
  EXPECT_NEAR(bbr.cwnd_bytes(), BbrLite::kCwndGain * bdp, 4 * kMss);

  // Loss must not crater the rate (BBR ignores it as a primary signal).
  const double rate_before = bbr.pacing_rate();
  LossEvent loss;
  loss.bytes_in_flight = 50'000;
  loss.now = now;
  bbr.on_loss_event(loss);
  EXPECT_DOUBLE_EQ(bbr.pacing_rate(), rate_before);

  // RTO collapses the window to one segment until delivery resumes.
  RtoEvent rto;
  rto.bytes_in_flight = 50'000;
  rto.now = now;
  bbr.on_rto(rto);
  EXPECT_DOUBLE_EQ(bbr.cwnd_bytes(), kMss);
  bbr.on_ack(new_ack(1448, now += 1'000, 1'448));
  EXPECT_GT(bbr.cwnd_bytes(), kMss);
}

TEST(Registry, BuiltInsResolveAndReportTheirNames) {
  const auto names = registered_controllers();
  ASSERT_GE(names.size(), 4u);
  for (const char* expected : {"bbr", "cubic", "reno", "vegas"}) {
    EXPECT_TRUE(is_registered(expected)) << expected;
    const auto controller = make_controller(expected, test_params());
    EXPECT_EQ(controller->name(), expected);
    EXPECT_DOUBLE_EQ(controller->cwnd_bytes(), 10 * kMss);
  }
  // Empty name = default (reno).
  EXPECT_EQ(make_controller("", test_params())->name(), "reno");
}

TEST(Registry, UnknownNameThrowsListingRegistered) {
  try {
    make_controller("warp-speed", test_params());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("warp-speed"), std::string::npos);
    EXPECT_NE(message.find("reno"), std::string::npos);
  }
}

TEST(Registry, CustomControllersCanBeRegistered) {
  register_controller("fixed-window", [](const Params& params) {
    class Fixed final : public CongestionController {
     public:
      using CongestionController::CongestionController;
      [[nodiscard]] std::string_view name() const override {
        return "fixed-window";
      }
      void on_ack(const AckEvent&) override {}
      void on_loss_event(const LossEvent&) override {}
      void on_rto(const RtoEvent&) override {}
      void on_rtt_sample(Microseconds, Microseconds) override {}
      [[nodiscard]] double cwnd_bytes() const override {
        return params().initial_cwnd_bytes;
      }
    };
    return std::make_unique<Fixed>(params);
  });
  EXPECT_TRUE(is_registered("fixed-window"));
  EXPECT_EQ(make_controller("fixed-window", test_params())->name(),
            "fixed-window");
}

}  // namespace
}  // namespace mahimahi::cc
