// Property test: no controller, fed any plausible event sequence, may
// ever report a window below one MSS, a non-finite window, or a negative
// or non-finite pacing rate. Event sequences are randomized but seeded —
// failures reproduce exactly.

#include <gtest/gtest.h>

#include <cmath>

#include "cc/congestion_controller.hpp"
#include "cc/registry.hpp"
#include "util/random.hpp"

namespace mahimahi::cc {
namespace {

constexpr double kMss = 1448.0;

void check_invariants(const CongestionController& controller,
                      const std::string& name, int step) {
  const double cwnd = controller.cwnd_bytes();
  ASSERT_TRUE(std::isfinite(cwnd))
      << name << " produced non-finite cwnd at step " << step;
  ASSERT_GE(cwnd, kMss)
      << name << " dropped below one MSS at step " << step;
  const double ssthresh = controller.ssthresh_bytes();
  ASSERT_FALSE(std::isnan(ssthresh))
      << name << " produced NaN ssthresh at step " << step;
  const double rate = controller.pacing_rate();
  ASSERT_TRUE(std::isfinite(rate) && rate >= 0.0)
      << name << " produced invalid pacing rate " << rate << " at step "
      << step;
}

TEST(CcProperty, RandomizedEventSequencesNeverBreakWindowInvariants) {
  Params params;
  params.mss_bytes = kMss;
  params.initial_cwnd_bytes = 10 * kMss;

  for (const std::string& name : registered_controllers()) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      util::Rng rng{seed * 7919};
      const auto controller = make_controller(name, params);
      Microseconds now = 0;
      bool in_recovery = false;
      for (int step = 0; step < 1'000; ++step) {
        now += rng.uniform_int(1, 200'000);
        switch (rng.uniform_int(0, 9)) {
          case 0: {  // loss event (enter recovery)
            if (!in_recovery) {
              LossEvent loss;
              loss.bytes_in_flight =
                  static_cast<std::uint64_t>(rng.uniform_int(0, 4'000'000));
              loss.now = now;
              controller->on_loss_event(loss);
              in_recovery = true;
            }
            break;
          }
          case 1: {  // RTO
            RtoEvent rto;
            rto.bytes_in_flight =
                static_cast<std::uint64_t>(rng.uniform_int(0, 4'000'000));
            rto.now = now;
            controller->on_rto(rto);
            in_recovery = false;
            break;
          }
          case 2: {  // RTT sample (including pathological extremes)
            const Microseconds sample = rng.chance(0.1)
                ? rng.uniform_int(1, 10)
                : rng.uniform_int(1'000, 2'000'000);
            controller->on_rtt_sample(sample, now);
            break;
          }
          case 3: {  // duplicate ack
            AckEvent dup;
            dup.is_duplicate = true;
            dup.in_recovery = in_recovery;
            dup.bytes_in_flight =
                static_cast<std::uint64_t>(rng.uniform_int(0, 4'000'000));
            dup.now = now;
            controller->on_ack(dup);
            break;
          }
          default: {  // cumulative ack (sometimes exiting recovery)
            AckEvent ack;
            ack.newly_acked_bytes =
                static_cast<std::uint64_t>(rng.uniform_int(1, 3 * 1448));
            ack.bytes_in_flight =
                static_cast<std::uint64_t>(rng.uniform_int(0, 4'000'000));
            if (in_recovery && rng.chance(0.3)) {
              ack.exiting_recovery = true;
              in_recovery = false;
            } else {
              ack.in_recovery = in_recovery;
            }
            ack.now = now;
            controller->on_ack(ack);
            break;
          }
        }
        check_invariants(*controller, name, step);
        if (::testing::Test::HasFatalFailure()) {
          return;
        }
      }
    }
  }
}

TEST(CcProperty, IdenticalEventSequencesYieldIdenticalWindows) {
  // The determinism contract: a controller is a pure state machine over
  // its event stream, so replaying the same stream twice must produce
  // bit-identical window trajectories (this is what makes parallel
  // measurement byte-identical at any thread count).
  Params params;
  params.mss_bytes = kMss;
  params.initial_cwnd_bytes = 10 * kMss;

  for (const std::string& name : registered_controllers()) {
    std::vector<double> first;
    std::vector<double> second;
    for (std::vector<double>* trajectory : {&first, &second}) {
      util::Rng rng{424242};
      const auto controller = make_controller(name, params);
      Microseconds now = 0;
      for (int step = 0; step < 500; ++step) {
        now += rng.uniform_int(1, 100'000);
        if (rng.chance(0.05)) {
          LossEvent loss;
          loss.bytes_in_flight =
              static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
          loss.now = now;
          controller->on_loss_event(loss);
        } else if (rng.chance(0.2)) {
          controller->on_rtt_sample(rng.uniform_int(1'000, 500'000), now);
        } else {
          AckEvent ack;
          ack.newly_acked_bytes = 1448;
          ack.bytes_in_flight =
              static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
          ack.now = now;
          controller->on_ack(ack);
        }
        trajectory->push_back(controller->cwnd_bytes());
      }
    }
    EXPECT_EQ(first, second) << name;  // exact double equality
  }
}

}  // namespace
}  // namespace mahimahi::cc
