// The fleet determinism contract, end to end: run_fleet's merged
// per-session report is byte-identical for any shard count and any
// thread count, and each session's bytes depend only on
// (fleet_seed, session_index) — never on which siblings ran.

#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include "corpus/site_generator.hpp"

namespace mahimahi::fleet {
namespace {

using namespace mahimahi::literals;

struct RecordedPage {
  corpus::GeneratedSite site;
  record::RecordStore store;
};

const RecordedPage& page() {
  static const RecordedPage entry = [] {
    corpus::SiteSpec spec;
    spec.name = "fleetdet";
    spec.seed = 23;
    spec.server_count = 3;
    spec.object_count = 6;
    spec.size_scale = 0.25;
    RecordedPage built{corpus::generate_site(spec), record::RecordStore{}};
    core::SessionConfig config;
    config.seed = 4;
    core::RecordSession recorder{built.site, corpus::LiveWebConfig{}, config};
    built.store = recorder.record();
    return built;
  }();
  return entry;
}

FleetSpec spec_of(int sessions, int shards) {
  FleetSpec spec;
  spec.sessions = sessions;
  spec.shards = shards;
  spec.stagger = 500;
  spec.seed = 77;
  spec.session.shells = {core::DelayShellSpec{5_ms}};
  return spec;
}

std::string run_bytes(int sessions, int shards,
                      core::ParallelRunner* runner = nullptr) {
  const FleetResult result = run_fleet(
      page().store, page().site.primary_url(), spec_of(sessions, shards),
      runner);
  return serialize_outcomes(result.sessions);
}

TEST(FleetDeterminism, OneShardEqualsManyShards) {
  const std::string one = run_bytes(24, 1);
  for (const int shards : {2, 3, 7, 24}) {
    EXPECT_EQ(one, run_bytes(24, shards)) << shards << " shards diverged";
  }
}

TEST(FleetDeterminism, OneThreadEqualsManyThreads) {
  core::ParallelRunner one_thread{1};
  core::ParallelRunner four_threads{4};
  // shards=0 uses the runner's thread count, so the two runs also use
  // different shard counts — the selfcheck's exact configuration.
  EXPECT_EQ(run_bytes(24, 0, &one_thread), run_bytes(24, 0, &four_threads));
}

TEST(FleetDeterminism, RemovingOneSessionLeavesOthersUnchanged) {
  // Seed-forking independence: session k's bytes are a pure function of
  // (fleet_seed, k). Run 12 sessions, then run only 11 by dropping one
  // from the middle via sharding — impossible with run_fleet's dense
  // index range, so compare against per-session bytes from the full run
  // split line by line instead: fleet of 12 vs fleet of 8 (prefix) — the
  // shared prefix must match byte for byte.
  const FleetResult full = run_fleet(page().store, page().site.primary_url(),
                                     spec_of(12, 3));
  const FleetResult prefix = run_fleet(page().store, page().site.primary_url(),
                                       spec_of(8, 2));
  ASSERT_EQ(full.sessions.size(), 12u);
  ASSERT_EQ(prefix.sessions.size(), 8u);
  for (std::size_t i = 0; i < prefix.sessions.size(); ++i) {
    EXPECT_EQ(serialize_outcomes({prefix.sessions[i]}),
              serialize_outcomes({full.sessions[i]}))
        << "session " << i << " changed when sessions 8..11 were removed";
  }
}

TEST(FleetDeterminism, SummaryStatisticsAreDeterministic) {
  const FleetResult a = run_fleet(page().store, page().site.primary_url(),
                                  spec_of(16, 1));
  const FleetResult b = run_fleet(page().store, page().site.primary_url(),
                                  spec_of(16, 4));
  EXPECT_DOUBLE_EQ(a.plt_p50_ms, b.plt_p50_ms);
  EXPECT_DOUBLE_EQ(a.plt_p95_ms, b.plt_p95_ms);
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.failed, 0u);
  EXPECT_EQ(a.peak_concurrent, b.peak_concurrent);
  EXPECT_GT(a.peak_concurrent, 0u);
}

TEST(FleetDeterminism, PeakConcurrencySweep) {
  // Hand-built intervals: [0,10] [5,15] [12,20] → peak 2; adding [6,9]
  // makes three overlap.
  const auto outcome = [](int idx, double start, double finish) {
    SessionOutcome o;
    o.session_index = idx;
    o.start_ms = start;
    o.finish_ms = finish;
    return o;
  };
  std::vector<SessionOutcome> outcomes{
      outcome(0, 0, 10), outcome(1, 5, 15), outcome(2, 12, 20)};
  EXPECT_EQ(peak_concurrency(outcomes), 2u);
  outcomes.push_back(outcome(3, 6, 9));
  EXPECT_EQ(peak_concurrency(outcomes), 3u);
  // Touching endpoints count as overlap (start edges sort first).
  std::vector<SessionOutcome> touching{outcome(0, 0, 5), outcome(1, 5, 10)};
  EXPECT_EQ(peak_concurrency(touching), 2u);
  EXPECT_EQ(peak_concurrency({}), 0u);
}

TEST(FleetDeterminism, RejectsEmptyFleet) {
  EXPECT_THROW(run_fleet(page().store, page().site.primary_url(),
                         spec_of(0, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mahimahi::fleet
