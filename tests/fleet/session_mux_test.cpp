// SessionMux: many replay sessions on one event loop. The tests pin the
// isolation contract — a session muxed with dozens of siblings produces
// exactly the bytes it produces alone — and the shared-world mode's
// opposite contract: sessions DO contend, deterministically.

#include "fleet/session_mux.hpp"

#include <gtest/gtest.h>

#include "corpus/site_generator.hpp"

namespace mahimahi::fleet {
namespace {

using namespace mahimahi::literals;

struct RecordedPage {
  corpus::GeneratedSite site;
  record::RecordStore store;
};

const RecordedPage& page() {
  static const RecordedPage entry = [] {
    corpus::SiteSpec spec;
    spec.name = "mux";
    spec.seed = 17;
    spec.server_count = 3;
    spec.object_count = 8;
    spec.size_scale = 0.25;
    RecordedPage built{corpus::generate_site(spec), record::RecordStore{}};
    core::SessionConfig config;
    config.seed = 9;
    core::RecordSession recorder{built.site, corpus::LiveWebConfig{}, config};
    built.store = recorder.record();
    return built;
  }();
  return entry;
}

MuxConfig quick_config() {
  MuxConfig config;
  config.fleet_seed = 5;
  config.stagger = 1'000;
  config.session.shells = {core::DelayShellSpec{5_ms}};
  return config;
}

std::vector<SessionOutcome> run_mux(const std::vector<int>& indices,
                                    MuxConfig config) {
  SessionMux mux{page().store, page().site.primary_url(), std::move(config)};
  for (const int index : indices) {
    mux.add_session(index);
  }
  return mux.run();
}

TEST(SessionMux, RunsEverySessionToCompletion) {
  const auto outcomes = run_mux({0, 1, 2, 3, 4, 5, 6, 7}, quick_config());
  ASSERT_EQ(outcomes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const SessionOutcome& o = outcomes[static_cast<std::size_t>(i)];
    EXPECT_EQ(o.session_index, i);
    EXPECT_NE(o.success, 0);
    EXPECT_GT(o.plt_ms, 0.0);
    // Arrival honors the (stagger, global index) contract...
    EXPECT_DOUBLE_EQ(o.start_ms, 1.0 * i);
    // ...and the load ran entirely on its own session clock.
    EXPECT_NEAR(o.finish_ms - o.start_ms, o.plt_ms, 1e-6);
    EXPECT_GT(o.objects_loaded, 0u);
    EXPECT_GT(o.bytes_downloaded, 0u);
  }
}

TEST(SessionMux, MuxedSessionsMatchSoloRunsByteForByte) {
  // The tentpole contract: session k muxed with 11 siblings produces the
  // same bytes as session k running alone — its world is its own, and
  // the loop's interleaving is invisible to it.
  const std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const auto muxed = run_mux(all, quick_config());
  for (const int k : {0, 5, 11}) {
    const auto solo = run_mux({k}, quick_config());
    ASSERT_EQ(solo.size(), 1u);
    EXPECT_EQ(serialize_outcomes({muxed[static_cast<std::size_t>(k)]}),
              serialize_outcomes(solo))
        << "session " << k << " changed bytes when muxed";
  }
}

TEST(SessionMux, EnrollmentOrderIsIrrelevant) {
  const auto forward = run_mux({0, 1, 2, 3, 4, 5}, quick_config());
  const auto backward = run_mux({5, 4, 3, 2, 1, 0}, quick_config());
  EXPECT_EQ(serialize_outcomes(forward), serialize_outcomes(backward));
}

TEST(SessionMux, SparseIndicesKeepTheirIdentity) {
  // A shard enrolls only its own subset; indices keep their global
  // meaning (seed AND arrival time), so outcomes match the full run's.
  const auto full = run_mux({0, 1, 2, 3, 4, 5, 6, 7}, quick_config());
  const auto evens = run_mux({0, 2, 4, 6}, quick_config());
  ASSERT_EQ(evens.size(), 4u);
  for (std::size_t i = 0; i < evens.size(); ++i) {
    EXPECT_EQ(serialize_outcomes({evens[i]}),
              serialize_outcomes({full[i * 2]}));
  }
}

TEST(SessionMux, DistinctSessionsGetDistinctSeeds) {
  // Different sessions must not replay identical randomness: with
  // compute jitter on, their PLTs differ.
  MuxConfig config = quick_config();
  const auto outcomes = run_mux({0, 1, 2, 3}, config);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_NE(outcomes[0].plt_ms, outcomes[i].plt_ms)
        << "sessions 0 and " << i << " look seed-aliased";
  }
}

TEST(SessionMux, RejectsDuplicateEnrollmentAndDoubleRun) {
  SessionMux mux{page().store, page().site.primary_url(), quick_config()};
  mux.add_session(3);
  EXPECT_ANY_THROW(mux.add_session(3));
}

TEST(SessionMux, SharedWorldSessionsContend) {
  MuxConfig config = quick_config();
  config.shared_world = true;
  config.stagger = 2'000;
  const auto solo = run_mux({0}, config);
  const auto crowd = run_mux({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, config);
  ASSERT_EQ(crowd.size(), 10u);
  util::Samples crowd_plts;
  for (const SessionOutcome& o : crowd) {
    EXPECT_NE(o.success, 0);
    crowd_plts.add(o.plt_ms);
  }
  // Ten users fighting over one origin-server farm cannot match a lone
  // user's PLT — if they do, the "shared" world isn't shared.
  EXPECT_GT(crowd_plts.median(), solo[0].plt_ms);
  // And the contention itself is deterministic.
  const auto again = run_mux({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, config);
  EXPECT_EQ(serialize_outcomes(crowd), serialize_outcomes(again));
}

TEST(SessionMux, PeakLiveSessionsTracksOverlap) {
  MuxConfig config = quick_config();
  config.stagger = 0;  // all admitted at t = 0: everyone overlaps
  SessionMux mux{page().store, page().site.primary_url(), config};
  for (int i = 0; i < 5; ++i) {
    mux.add_session(i);
  }
  mux.run();
  EXPECT_EQ(mux.peak_live_sessions(), 5u);
}

}  // namespace
}  // namespace mahimahi::fleet
