// The derived-metrics contract through the experiment engine: the
// per-cell "metrics" report block is byte-identical at any thread count
// and across shard splits, appears only when asked for, derives the same
// with or without trace artifacts on disk — and the wall-clock profiler,
// which observes these same runs, perturbs none of their bytes.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_runner.hpp"
#include "experiment/runner.hpp"
#include "fault/fault.hpp"
#include "obs/profile.hpp"

namespace mahimahi::experiment {
namespace {

namespace fs = std::filesystem;

SiteAxis tiny_site() {
  SiteAxis axis;
  axis.label = "tiny";
  axis.site.name = "tiny";
  axis.site.seed = 7;
  axis.site.server_count = 3;
  axis.site.object_count = 8;
  axis.site.size_scale = 0.25;
  return axis;
}

/// One healthy and one chaos cell — retries and failures are where the
/// fault-recovery and burst metrics earn their keep.
ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "metrics-unit";
  spec.seed = 99;
  spec.loads_per_cell = 2;
  spec.sites = {tiny_site()};
  spec.protocols = {web::AppProtocol::kHttp11};
  ShellAxis cable;
  cable.label = "cable";
  ShellLayerSpec delay;
  delay.kind = ShellLayerSpec::Kind::kDelay;
  delay.delay_one_way = 10'000;
  ShellLayerSpec link;
  link.kind = ShellLayerSpec::Kind::kLink;
  link.up_mbps = 8;
  link.down_mbps = 8;
  cable.layers = {delay, link};
  spec.shells = {cable};
  spec.queues = {QueueAxis{"fifo", net::QueueSpec{}}};
  spec.ccs = {CcAxis{"reno", {"reno"}}};
  FaultAxis chaos;
  chaos.label = "chaos";
  chaos.fault = fault::parse_fault_spec(
      "crash:p=0.3 retry:deadline=2s,max=3,base=100ms,cap=1s");
  spec.faults = {FaultAxis{}, chaos};
  return spec;
}

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing artifact " << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / name;
  fs::remove_all(dir);
  return dir;
}

TEST(ExperimentMetrics, BlockAppearsOnlyWhenEnabled) {
  const ExperimentSpec spec = small_spec();
  RunOptions plain;
  plain.transport_probes = false;
  RunOptions with_metrics = plain;
  with_metrics.metrics = true;
  const Report off = run_experiment(spec, plain);
  const Report on = run_experiment(spec, with_metrics);
  EXPECT_EQ(off.to_json().find("\"metrics\""), std::string::npos);
  EXPECT_NE(on.to_json().find("\"metrics\""), std::string::npos);
  for (const CellResult& cell : off.cells) {
    EXPECT_TRUE(cell.metrics_json.empty());
  }
  for (const CellResult& cell : on.cells) {
    EXPECT_FALSE(cell.metrics_json.empty());
    // The inline block is the schema-less {counters, gauges, histograms}
    // object (the report's own schema field covers the row).
    EXPECT_NE(cell.metrics_json.find("\"counters\""), std::string::npos);
    EXPECT_NE(cell.metrics_json.find("plt.share.receive"), std::string::npos);
  }
  // CSV and bench exports never carry the block — only the JSON report.
  EXPECT_EQ(on.to_csv(), off.to_csv());
  EXPECT_EQ(on.to_bench_json(), off.to_bench_json());
}

TEST(ExperimentMetrics, ByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = small_spec();
  core::ParallelRunner one{1};
  core::ParallelRunner eight{8};
  RunOptions options_one;
  options_one.runner = &one;
  options_one.transport_probes = false;
  options_one.metrics = true;
  RunOptions options_eight = options_one;
  options_eight.runner = &eight;
  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_eight);
  EXPECT_EQ(a.to_json(), b.to_json());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].metrics_json, b.cells[i].metrics_json);
  }
}

TEST(ExperimentMetrics, ShardRowsMatchTheUnshardedBlocks) {
  const ExperimentSpec spec = small_spec();
  RunOptions full_options;
  full_options.transport_probes = false;
  full_options.metrics = true;
  const Report full = run_experiment(spec, full_options);
  std::vector<CellResult> stitched;
  for (int shard = 0; shard < 2; ++shard) {
    RunOptions options = full_options;
    options.shard_count = 2;
    options.shard_index = shard;
    for (CellResult& cell : run_experiment(spec, options).cells) {
      stitched.push_back(std::move(cell));
    }
  }
  ASSERT_EQ(stitched.size(), full.cells.size());
  for (const CellResult& row : full.cells) {
    bool matched = false;
    for (const CellResult& candidate : stitched) {
      if (candidate.index == row.index) {
        matched = candidate.metrics_json == row.metrics_json;
      }
    }
    EXPECT_TRUE(matched) << "cell " << row.index
                         << " metrics diverged under sharding";
  }
}

TEST(ExperimentMetrics, DerivationDoesNotNeedArtifactsOnDisk) {
  // --metrics alone writes nothing; adding --trace-dir must not change
  // the derived numbers (same merged buffers feed both paths).
  const ExperimentSpec spec = small_spec();
  RunOptions memory_only;
  memory_only.transport_probes = false;
  memory_only.metrics = true;
  RunOptions with_artifacts = memory_only;
  const fs::path traces = fresh_dir("metrics-traces");
  with_artifacts.trace_dir = traces.string();
  const Report a = run_experiment(spec, memory_only);
  const Report b = run_experiment(spec, with_artifacts);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(fs::exists(traces / "cell0.csv"));
}

TEST(ExperimentMetrics, ProfilerPerturbsNothing) {
  // --profile is observation only: with the profiler hot, every
  // determinism-checked byte — report JSON, metrics blocks, trace
  // artifacts — matches a cold run exactly.
  const ExperimentSpec spec = small_spec();
  RunOptions cold;
  cold.transport_probes = false;
  cold.metrics = true;
  const fs::path cold_dir = fresh_dir("profile-cold");
  cold.trace_dir = cold_dir.string();
  RunOptions hot = cold;
  const fs::path hot_dir = fresh_dir("profile-hot");
  hot.trace_dir = hot_dir.string();

  obs::Profiler::enable(false);
  obs::Profiler::reset();
  const Report quiet = run_experiment(spec, cold);
  EXPECT_TRUE(obs::Profiler::snapshot().empty());

  obs::Profiler::enable(true);
  const Report profiled = run_experiment(spec, hot);
  const auto scopes = obs::Profiler::snapshot();
  obs::Profiler::enable(false);
  obs::Profiler::reset();

  EXPECT_EQ(quiet.to_json(), profiled.to_json());
  for (const char* suffix : {".trace.json", ".har", ".csv"}) {
    for (int cell = 0; cell < 2; ++cell) {
      const std::string name = "cell" + std::to_string(cell) + suffix;
      EXPECT_EQ(read_file(cold_dir / name), read_file(hot_dir / name))
          << name;
    }
  }
  // The profiled run actually recorded the pipeline phases.
  std::vector<std::string> names;
  names.reserve(scopes.size());
  for (const auto& entry : scopes) {
    names.push_back(entry.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "replay"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "metrics"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "export"), names.end());
}

}  // namespace
}  // namespace mahimahi::experiment
