#include "experiment/spec.hpp"

#include <gtest/gtest.h>

#include "experiment/matrix.hpp"

namespace mahimahi::experiment {
namespace {

constexpr const char* kFullSpec = R"(
# A spec exercising every key.
name demo
seed 42
loads 4
probe-seconds 8
site nytimes
site wikihow
protocol http11
protocol mux
shell lte delay=30ms link=lte
shell cable delay=10ms link=12x1.5 loss=0.002
queue fifo infinite
queue dt droptail packets=100
queue aqm pie target=15ms tupdate=15ms
cc cubic
cc mixed 1xbbr+5xcubic
fleet solo sessions=1
fleet crowd sessions=8 stagger=25ms
)";

TEST(SpecParse, FullSpecRoundTrips) {
  const ExperimentSpec spec = parse_spec(kFullSpec);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.loads_per_cell, 4);
  EXPECT_EQ(spec.probe_duration, 8'000'000);
  ASSERT_EQ(spec.sites.size(), 2u);
  EXPECT_EQ(spec.sites[0].label, "nytimes");
  ASSERT_EQ(spec.protocols.size(), 2u);
  ASSERT_EQ(spec.shells.size(), 2u);
  EXPECT_EQ(spec.shells[0].label, "lte");
  ASSERT_EQ(spec.shells[0].layers.size(), 2u);
  EXPECT_EQ(spec.shells[0].layers[0].kind, ShellLayerSpec::Kind::kDelay);
  EXPECT_EQ(spec.shells[0].layers[0].delay_one_way, 30'000);
  EXPECT_EQ(spec.shells[0].layers[1].trace_name, "lte");
  ASSERT_EQ(spec.shells[1].layers.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.shells[1].layers[1].up_mbps, 12.0);
  EXPECT_DOUBLE_EQ(spec.shells[1].layers[1].down_mbps, 1.5);
  EXPECT_DOUBLE_EQ(spec.shells[1].layers[2].downlink_loss, 0.002);
  ASSERT_EQ(spec.queues.size(), 3u);
  EXPECT_EQ(spec.queues[1].queue.discipline, "droptail");
  EXPECT_EQ(spec.queues[1].queue.max_packets, 100u);
  EXPECT_EQ(spec.queues[2].queue.discipline, "pie");
  EXPECT_EQ(spec.queues[2].queue.pie_target, 15'000);
  ASSERT_EQ(spec.ccs.size(), 2u);
  EXPECT_EQ(spec.ccs[0].label, "cubic");
  EXPECT_EQ(spec.ccs[0].fleet, std::vector<std::string>{"cubic"});
  EXPECT_EQ(spec.ccs[1].label, "mixed");
  ASSERT_EQ(spec.ccs[1].fleet.size(), 6u);
  EXPECT_EQ(spec.ccs[1].fleet[0], "bbr");
  EXPECT_EQ(spec.ccs[1].fleet[5], "cubic");
  ASSERT_EQ(spec.fleets.size(), 2u);
  EXPECT_EQ(spec.fleets[0].label, "solo");
  EXPECT_EQ(spec.fleets[0].sessions, 1);
  EXPECT_EQ(spec.fleets[0].stagger, 50'000);  // default
  EXPECT_EQ(spec.fleets[1].label, "crowd");
  EXPECT_EQ(spec.fleets[1].sessions, 8);
  EXPECT_EQ(spec.fleets[1].stagger, 25'000);
}

TEST(SpecParse, FleetShorthandAndErrors) {
  const ExperimentSpec spec = parse_spec("fleet 16\n");
  ASSERT_EQ(spec.fleets.size(), 1u);
  EXPECT_EQ(spec.fleets[0].label, "16");
  EXPECT_EQ(spec.fleets[0].sessions, 16);
  // A labelled fleet must say how big it is.
  EXPECT_THROW(parse_spec("fleet crowd\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fleet crowd stagger=10ms\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("fleet crowd sessions=0\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fleet crowd sessions=300\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("fleet crowd sessions=4 knob=1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("fleet a sessions=2\nfleet a sessions=4\n"),
               std::invalid_argument);
}

TEST(SpecParse, RejectsDuplicateScalarKeyNamingBothLines) {
  // Scalar keys used to silently keep the last value — a spec redefining
  // `seed` halfway down measured something other than its header said.
  try {
    parse_spec("name demo\nseed 1\nloads 3\nseed 2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
    EXPECT_NE(message.find("duplicate 'seed'"), std::string::npos) << message;
    EXPECT_NE(message.find("first set on line 2"), std::string::npos)
        << message;
  }
  EXPECT_THROW(parse_spec("name a\nname b\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("loads 3\nloads 4\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("probe-seconds 8\nprobe-seconds 9\n"),
               std::invalid_argument);
}

TEST(SpecParse, UnknownKeyErrorListsFleet) {
  try {
    parse_spec("name demo\n\n# comment\nfleets 3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    // Line numbers count raw lines (blank and comment lines included).
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
    EXPECT_NE(message.find("unknown key 'fleets'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("fleet"), std::string::npos) << message;
  }
}

TEST(SpecParse, ErrorsNameTheLine) {
  try {
    parse_spec("name demo\nfrobnicate 3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    EXPECT_NE(message.find("frobnicate"), std::string::npos) << message;
  }
}

TEST(SpecParse, RejectsUnknownController) {
  EXPECT_THROW(parse_spec("cc warp 1xwarpspeed\n"), std::invalid_argument);
}

TEST(SpecParse, RejectsUnknownQueueDiscipline) {
  try {
    parse_spec("queue q red packets=10\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("red"), std::string::npos);
  }
}

TEST(SpecParse, RejectsBoundLessDroptail) {
  EXPECT_THROW(parse_spec("queue q droptail\n"), std::invalid_argument);
}

TEST(SpecParse, RejectsParamsForeignToTheDiscipline) {
  // 'interval=' belongs to codel; storing it silently on a pie queue
  // would measure a different AQM than the spec author intended.
  EXPECT_THROW(parse_spec("queue q pie interval=20ms\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("queue q codel tupdate=20ms\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("queue q infinite packets=10\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("queue q droptail packets=10 target=5ms\n"),
               std::invalid_argument);
  // ...while each discipline's own knobs parse.
  EXPECT_NO_THROW(parse_spec("queue q codel target=5ms interval=100ms\n"));
  EXPECT_NO_THROW(parse_spec("queue q pie target=15ms tupdate=15ms\n"));
}

TEST(SpecParse, RejectsUnknownSiteListingKnown) {
  try {
    parse_spec("site geocities\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("geocities"), std::string::npos) << message;
    EXPECT_NE(message.find("nytimes"), std::string::npos) << message;
  }
}

TEST(SpecParse, RejectsDuplicateAxisLabels) {
  EXPECT_THROW(parse_spec("cc cubic\ncc cubic\n"), std::invalid_argument);
  EXPECT_THROW(
      parse_spec("shell a delay=1ms\nshell a delay=2ms\n"),
      std::invalid_argument);
}

TEST(SpecParse, RejectsZeroFleetCount) {
  EXPECT_THROW(parse_spec("cc z 0xcubic\n"), std::invalid_argument);
}

TEST(Matrix, ExpansionOrderAndCount) {
  const ExperimentSpec spec = parse_spec(kFullSpec);
  const std::vector<Cell> cells = expand_matrix(spec);
  // 2 sites x 2 protocols x 2 shells x 3 queues x 2 ccs x 2 fleets.
  ASSERT_EQ(cells.size(), 96u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
  }
  // fleet is the innermost axis; site the outermost.
  EXPECT_EQ(cells[0].label(), "nytimes/http11/lte/fifo/cubic/solo");
  EXPECT_EQ(cells[1].label(), "nytimes/http11/lte/fifo/cubic/crowd");
  EXPECT_EQ(cells[2].label(), "nytimes/http11/lte/fifo/mixed/solo");
  EXPECT_EQ(cells[4].label(), "nytimes/http11/lte/dt/cubic/solo");
  EXPECT_EQ(cells[95].label(), "wikihow/mux/cable/aqm/mixed/crowd");
  EXPECT_EQ(cells[1].fleet.sessions, 8);
}

TEST(Matrix, EmptyAxesGetDefaults) {
  const std::vector<Cell> cells = expand_matrix(parse_spec("name minimal\n"));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label(), "nytimes/http11/bare/fifo/reno/solo");
  EXPECT_EQ(cells[0].fleet.sessions, 1);
}

TEST(SpecParse, FaultAxisParsesLabelsAndSpecs) {
  const ExperimentSpec spec = parse_spec(
      "fault none\n"
      "fault chaos crash:p=0.1 stall:p=0.05 "
      "retry:deadline=2s,max=2,base=100ms,cap=1s\n");
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_EQ(spec.faults[0].label, "none");
  EXPECT_FALSE(spec.faults[0].fault.any());
  EXPECT_EQ(spec.faults[1].label, "chaos");
  EXPECT_DOUBLE_EQ(spec.faults[1].fault.origin.crash_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.faults[1].fault.origin.stall_rate, 0.05);
  EXPECT_EQ(spec.faults[1].fault.client.max_retries, 2);
}

TEST(SpecParse, FaultAxisRejectsBadLines) {
  // 'none' is the only label allowed to carry no injectors — and it may
  // carry nothing else; labels are unique like every other axis; injector
  // parse errors surface with the offending line.
  EXPECT_THROW(parse_spec("fault none crash:p=0.1\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fault broken\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fault healthy none\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fault a crash:p=0.1\nfault a crash:p=0.2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("fault bad crash:p=2\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fault bad warp:speed=9\n"), std::invalid_argument);
}

TEST(Matrix, FaultIsTheInnermostAxisAndNoneStaysOffTheLabel) {
  const ExperimentSpec spec = parse_spec(
      "cc reno\ncc cubic\n"
      "fault none\n"
      "fault chaos crash:p=0.1 noretry\n");
  const std::vector<Cell> cells = expand_matrix(spec);
  ASSERT_EQ(cells.size(), 4u);  // 2 ccs x 2 faults
  // The healthy control keeps the pre-fault-axis label verbatim; only
  // faulted cells grow the extra segment.
  EXPECT_EQ(cells[0].label(), "nytimes/http11/bare/fifo/reno/solo");
  EXPECT_EQ(cells[1].label(), "nytimes/http11/bare/fifo/reno/solo/chaos");
  EXPECT_EQ(cells[2].label(), "nytimes/http11/bare/fifo/cubic/solo");
  EXPECT_EQ(cells[3].label(), "nytimes/http11/bare/fifo/cubic/solo/chaos");
  EXPECT_TRUE(cells[1].fault.fault.client.no_retry);
  // A spec with no fault lines defaults to the healthy control.
  const std::vector<Cell> defaults = expand_matrix(parse_spec("cc reno\n"));
  ASSERT_EQ(defaults.size(), 1u);
  EXPECT_EQ(defaults[0].fault.label, "none");
  EXPECT_FALSE(defaults[0].fault.fault.any());
}

TEST(Matrix, CellSeedsAreStableAndDistinct) {
  // The (seed, cell) derivation is part of the determinism contract: the
  // same spec must map cell k to the same seed forever.
  EXPECT_EQ(derive_cell_seed(42, 0), derive_cell_seed(42, 0));
  EXPECT_NE(derive_cell_seed(42, 0), derive_cell_seed(42, 1));
  EXPECT_NE(derive_cell_seed(42, 0), derive_cell_seed(43, 0));
  const ExperimentSpec spec = parse_spec(kFullSpec);
  const std::vector<Cell> a = expand_matrix(spec);
  const std::vector<Cell> b = expand_matrix(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell_seed, b[i].cell_seed);
    EXPECT_EQ(a[i].cell_seed, derive_cell_seed(spec.seed, a[i].index));
  }
}

TEST(Matrix, MaterializeInstallsQueueOnLink) {
  const ExperimentSpec spec =
      parse_spec("shell s delay=5ms link=8 loss=0.01\n"
                 "queue dt droptail packets=7\n");
  const std::vector<Cell> cells = expand_matrix(spec);
  ASSERT_EQ(cells.size(), 1u);
  const MaterializedCell materialized = materialize_cell(cells[0]);
  ASSERT_EQ(materialized.shells.size(), 3u);
  const auto* link = std::get_if<core::LinkShellSpec>(&materialized.shells[1]);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->uplink_queue.discipline, "droptail");
  EXPECT_EQ(link->uplink_queue.max_packets, 7u);
  EXPECT_EQ(link->downlink_queue.discipline, "droptail");
  EXPECT_EQ(materialized.total_one_way_delay, 5'000);
  EXPECT_DOUBLE_EQ(materialized.loss, 0.01);
  EXPECT_NE(materialized.uplink, nullptr);
  // Two materializations of the same cell produce identical traces.
  const MaterializedCell again = materialize_cell(cells[0]);
  EXPECT_EQ(materialized.uplink->opportunities(),
            again.uplink->opportunities());
}

}  // namespace
}  // namespace mahimahi::experiment
