// End-to-end tests of the experiment engine on a deliberately tiny corpus
// site: matrix execution, thread-count byte-identity of the serialized
// reports (the engine's core contract), sharding, and the mixed-CC
// fairness cell.

#include "experiment/runner.hpp"

#include <gtest/gtest.h>

namespace mahimahi::experiment {
namespace {

/// A small site so each page load stays cheap (the real corpus profiles
/// are exercised by the bench drivers and integration tier).
SiteAxis tiny_site() {
  SiteAxis axis;
  axis.label = "tiny";
  axis.site.name = "tiny";
  axis.site.seed = 7;
  axis.site.server_count = 3;
  axis.site.object_count = 8;
  axis.site.size_scale = 0.25;
  return axis;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "unit";
  spec.seed = 99;
  spec.loads_per_cell = 2;
  spec.probe_duration = 2'000'000;  // 2 s window keeps probes quick
  spec.sites = {tiny_site()};
  spec.protocols = {web::AppProtocol::kHttp11};
  ShellAxis cable;
  cable.label = "cable";
  ShellLayerSpec delay;
  delay.kind = ShellLayerSpec::Kind::kDelay;
  delay.delay_one_way = 10'000;
  ShellLayerSpec link;
  link.kind = ShellLayerSpec::Kind::kLink;
  link.up_mbps = 8;
  link.down_mbps = 8;
  cable.layers = {delay, link};
  spec.shells = {cable};
  spec.queues = {QueueAxis{"fifo", net::QueueSpec{}}};
  spec.ccs = {CcAxis{"reno", {"reno"}}, CcAxis{"cubic", {"cubic"}}};
  return spec;
}

TEST(ExperimentRunner, RunsEveryCellAndReportsSamples) {
  const Report report = run_experiment(small_spec());
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.total_cells, 2);
  for (const CellResult& cell : report.cells) {
    EXPECT_EQ(cell.plt_ms.size(), 2u);
    EXPECT_EQ(cell.failed_loads, 0u);
    for (const double plt : cell.plt_ms.values()) {
      EXPECT_GT(plt, 0.0);
    }
    ASSERT_TRUE(cell.probe_ran);
    ASSERT_EQ(cell.flows.size(), 1u);
    EXPECT_DOUBLE_EQ(cell.jain_index, 1.0);  // single flow
    EXPECT_NEAR(cell.flows[0].share, 1.0, 1e-12);
  }
  EXPECT_EQ(report.cells[0].cc, "reno");
  EXPECT_EQ(report.cells[1].cc, "cubic");
  // The probe really ran each cell's controller (both fully utilize the
  // clean 8 Mbit/s bottleneck, so byte counts alone cannot tell them
  // apart — the transport-visible difference shows on lossy cells, which
  // bench_cc_comparison's shape checks cover).
  EXPECT_EQ(report.cells[0].flows[0].controller, "reno");
  EXPECT_EQ(report.cells[1].flows[0].controller, "cubic");
}

TEST(ExperimentRunner, ReportsAreByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = small_spec();
  core::ParallelRunner one{1};
  core::ParallelRunner four{4};
  RunOptions options_one;
  options_one.runner = &one;
  RunOptions options_four;
  options_four.runner = &four;
  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_four);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_bench_json(), b.to_bench_json());
}

TEST(ExperimentRunner, ShardsPartitionTheMatrixExactly) {
  const ExperimentSpec spec = small_spec();
  const Report full = run_experiment(spec);
  RunOptions shard0;
  shard0.shard_count = 2;
  shard0.shard_index = 0;
  RunOptions shard1;
  shard1.shard_count = 2;
  shard1.shard_index = 1;
  const Report a = run_experiment(spec, shard0);
  const Report b = run_experiment(spec, shard1);
  ASSERT_EQ(a.cells.size() + b.cells.size(), full.cells.size());
  // Shard rows are the exact rows of the full run (same seeds, same
  // samples) — sharding changes where cells run, never what they measure.
  const auto row_json = [](const Report& report, std::size_t i) {
    Report one;
    one.name = report.name;
    one.seed = report.seed;
    one.loads_per_cell = report.loads_per_cell;
    one.total_cells = report.total_cells;
    one.cells = {report.cells[i]};
    return one.to_json();
  };
  EXPECT_EQ(row_json(a, 0), row_json(full, 0));
  EXPECT_EQ(row_json(b, 0), row_json(full, 1));
}

TEST(ExperimentRunner, LoadsOverrideCapsWork) {
  RunOptions options;
  options.loads_override = 1;
  options.transport_probes = false;
  const Report report = run_experiment(small_spec(), options);
  for (const CellResult& cell : report.cells) {
    EXPECT_EQ(cell.plt_ms.size(), 1u);
    EXPECT_FALSE(cell.probe_ran);
  }
}

TEST(ExperimentRunner, MixedFleetCellReportsFairness) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"mixed", {"bbr", "cubic", "cubic"}}};
  const Report report = run_experiment(spec);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellResult& cell = report.cells[0];
  // Page loads run with the heterogeneous fleet plumbed through browser
  // and origin servers.
  EXPECT_EQ(cell.failed_loads, 0u);
  ASSERT_TRUE(cell.probe_ran);
  ASSERT_EQ(cell.flows.size(), 3u);
  EXPECT_EQ(cell.flows[0].controller, "bbr");
  EXPECT_EQ(cell.flows[1].controller, "cubic");
  double total_share = 0;
  for (const FlowResult& flow : cell.flows) {
    EXPECT_GT(flow.bytes_delivered, 0u) << flow.controller << " starved";
    total_share += flow.share;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_GT(cell.jain_index, 0.0);
  EXPECT_LE(cell.jain_index, 1.0);
}

TEST(ExperimentRunner, FleetAxisDegradesPltUnderLoad) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"cubic", {"cubic"}}};
  spec.fleets = {FleetAxis{"solo", 1, 0}, FleetAxis{"crowd", 6, 10'000}};
  RunOptions options;
  options.transport_probes = false;
  const Report report = run_experiment(spec, options);
  ASSERT_EQ(report.cells.size(), 2u);
  const CellResult& solo = report.cells[0];
  const CellResult& crowd = report.cells[1];
  EXPECT_EQ(solo.fleet, "solo");
  EXPECT_EQ(solo.fleet_sessions, 1);
  EXPECT_EQ(crowd.fleet, "crowd");
  EXPECT_EQ(crowd.fleet_sessions, 6);
  // One sample per load for the solo cell; sessions x loads for the crowd.
  EXPECT_EQ(solo.plt_ms.size(), 2u);
  EXPECT_EQ(crowd.plt_ms.size(), 12u);
  EXPECT_EQ(solo.failed_loads + crowd.failed_loads, 0u);
  // Six users contending for the same 8 Mbit/s link and origin servers
  // cannot beat one user having it all to itself.
  EXPECT_GT(crowd.plt_ms.median(), solo.plt_ms.median());
}

TEST(ExperimentRunner, FleetCellsAreByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"cubic", {"cubic"}}};
  spec.fleets = {FleetAxis{"crowd", 4, 10'000}};
  core::ParallelRunner one{1};
  core::ParallelRunner four{4};
  RunOptions options_one;
  options_one.runner = &one;
  options_one.transport_probes = false;
  RunOptions options_four = options_one;
  options_four.runner = &four;
  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_four);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(ExperimentRunner, RejectsBadShards) {
  RunOptions options;
  options.shard_index = 2;
  options.shard_count = 2;
  EXPECT_THROW(run_experiment(small_spec(), options), std::invalid_argument);
}

/// small_spec() narrowed to one cc, with a fault ladder attached.
ExperimentSpec faulted_spec() {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"reno", {"reno"}}};
  FaultAxis chaos;
  chaos.label = "chaos";
  chaos.fault = fault::parse_fault_spec(
      "crash:p=0.3 retry:deadline=2s,max=3,base=100ms,cap=1s");
  FaultAxis grim;
  grim.label = "grim";
  grim.fault = fault::parse_fault_spec("crash:p=0.6 noretry");
  spec.faults = {FaultAxis{}, chaos, grim};
  return spec;
}

TEST(ExperimentRunner, FaultNoneAxisChangesNoMeasurement) {
  // Adding an explicit `fault none` axis widens the report (the fault
  // column appears) but must not perturb a single sample: the healthy
  // control is the same simulation, coin-flip for coin-flip.
  ExperimentSpec bare = small_spec();
  bare.ccs = {CcAxis{"reno", {"reno"}}};
  ExperimentSpec with_axis = bare;
  with_axis.faults = {FaultAxis{}};

  const Report a = run_experiment(bare);
  const Report b = run_experiment(with_axis);
  EXPECT_FALSE(a.fault_axis);
  EXPECT_TRUE(b.fault_axis);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].plt_ms.values(), b.cells[i].plt_ms.values());
    EXPECT_EQ(a.cells[i].queue_delay_p95_ms, b.cells[i].queue_delay_p95_ms);
    EXPECT_EQ(b.cells[i].fault, "none");
  }
  // And the axis-free report serializes without the fault column at all —
  // the byte-compat contract for every pre-existing spec.
  EXPECT_EQ(a.to_json().find("\"fault\""), std::string::npos);
  EXPECT_EQ(a.to_csv().find("fault"), std::string::npos);
  EXPECT_NE(b.to_csv().find(",fault,"), std::string::npos);
}

TEST(ExperimentRunner, FaultedCellsAreByteIdenticalAcrossThreadCounts) {
  // The whole point of stateless fault decisions: a chaos ladder is as
  // reproducible as a healthy run, at any pool size.
  const ExperimentSpec spec = faulted_spec();
  core::ParallelRunner one{1};
  core::ParallelRunner four{4};
  RunOptions options_one;
  options_one.runner = &one;
  RunOptions options_four;
  options_four.runner = &four;
  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_four);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_bench_json(), b.to_bench_json());
  // Prove the ladder actually injected: the defended cell retried or
  // timed out, the undefended cell lost objects.
  ASSERT_EQ(a.cells.size(), 3u);
  const CellResult& chaos = a.cells[1];
  const CellResult& grim = a.cells[2];
  EXPECT_EQ(chaos.fault, "chaos");
  EXPECT_EQ(grim.fault, "grim");
  EXPECT_GT(chaos.retries + chaos.timeouts + chaos.objects_failed, 0u);
  EXPECT_GT(grim.objects_failed, 0u);
}

TEST(ExperimentRunner, FaultShardsMatchTheUnshardedRows) {
  // Sharding a faulted matrix must reproduce the full run's rows exactly
  // — fault plans key off the cell seed, not off which shard ran them.
  const ExperimentSpec spec = faulted_spec();
  const Report full = run_experiment(spec);
  std::vector<CellResult> stitched;
  for (int shard = 0; shard < 2; ++shard) {
    RunOptions options;
    options.shard_count = 2;
    options.shard_index = shard;
    for (CellResult& cell : run_experiment(spec, options).cells) {
      stitched.push_back(std::move(cell));
    }
  }
  ASSERT_EQ(stitched.size(), full.cells.size());
  for (const CellResult& row : full.cells) {
    bool matched = false;
    for (const CellResult& candidate : stitched) {
      if (candidate.index != row.index) {
        continue;
      }
      matched = candidate.plt_ms.values() == row.plt_ms.values() &&
                candidate.objects_failed == row.objects_failed &&
                candidate.retries == row.retries &&
                candidate.failed_loads == row.failed_loads;
    }
    EXPECT_TRUE(matched) << "cell " << row.index << " diverged under sharding";
  }
}

TEST(ExperimentRunner, FailedLoadsLandAsReportRowsNotCrashes) {
  // An undefended cell under heavy crash faults: loads fail, the
  // experiment completes, and the failures are data — counted per cell,
  // with the healthy cells untouched.
  const ExperimentSpec spec = faulted_spec();
  const Report report = run_experiment(spec);
  ASSERT_EQ(report.cells.size(), 3u);
  const CellResult& none = report.cells[0];
  const CellResult& grim = report.cells[2];
  EXPECT_EQ(none.failed_loads, 0u);
  EXPECT_EQ(none.objects_failed, 0u);
  EXPECT_GT(grim.failed_loads, 0u);
  // Every load produced a row-worth of samples — failed ones included.
  EXPECT_EQ(grim.plt_ms.size() + /* torn tasks */ grim.load_errors.size(),
            static_cast<std::size_t>(report.loads_per_cell));
  // Degraded PLT never exceeds full PLT, sample for sample.
  ASSERT_EQ(grim.degraded_plt_ms.size(), grim.plt_ms.size());
  for (std::size_t i = 0; i < grim.plt_ms.size(); ++i) {
    EXPECT_LE(grim.degraded_plt_ms.values()[i], grim.plt_ms.values()[i]);
  }
  // The serialized report carries the fault axis and the failure counts.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"fault\": \"grim\""), std::string::npos);
  EXPECT_NE(json.find("\"objects_failed\""), std::string::npos);
}

}  // namespace
}  // namespace mahimahi::experiment
