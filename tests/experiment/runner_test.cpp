// End-to-end tests of the experiment engine on a deliberately tiny corpus
// site: matrix execution, thread-count byte-identity of the serialized
// reports (the engine's core contract), sharding, and the mixed-CC
// fairness cell.

#include "experiment/runner.hpp"

#include <gtest/gtest.h>

namespace mahimahi::experiment {
namespace {

/// A small site so each page load stays cheap (the real corpus profiles
/// are exercised by the bench drivers and integration tier).
SiteAxis tiny_site() {
  SiteAxis axis;
  axis.label = "tiny";
  axis.site.name = "tiny";
  axis.site.seed = 7;
  axis.site.server_count = 3;
  axis.site.object_count = 8;
  axis.site.size_scale = 0.25;
  return axis;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "unit";
  spec.seed = 99;
  spec.loads_per_cell = 2;
  spec.probe_duration = 2'000'000;  // 2 s window keeps probes quick
  spec.sites = {tiny_site()};
  spec.protocols = {web::AppProtocol::kHttp11};
  ShellAxis cable;
  cable.label = "cable";
  ShellLayerSpec delay;
  delay.kind = ShellLayerSpec::Kind::kDelay;
  delay.delay_one_way = 10'000;
  ShellLayerSpec link;
  link.kind = ShellLayerSpec::Kind::kLink;
  link.up_mbps = 8;
  link.down_mbps = 8;
  cable.layers = {delay, link};
  spec.shells = {cable};
  spec.queues = {QueueAxis{"fifo", net::QueueSpec{}}};
  spec.ccs = {CcAxis{"reno", {"reno"}}, CcAxis{"cubic", {"cubic"}}};
  return spec;
}

TEST(ExperimentRunner, RunsEveryCellAndReportsSamples) {
  const Report report = run_experiment(small_spec());
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.total_cells, 2);
  for (const CellResult& cell : report.cells) {
    EXPECT_EQ(cell.plt_ms.size(), 2u);
    EXPECT_EQ(cell.failed_loads, 0u);
    for (const double plt : cell.plt_ms.values()) {
      EXPECT_GT(plt, 0.0);
    }
    ASSERT_TRUE(cell.probe_ran);
    ASSERT_EQ(cell.flows.size(), 1u);
    EXPECT_DOUBLE_EQ(cell.jain_index, 1.0);  // single flow
    EXPECT_NEAR(cell.flows[0].share, 1.0, 1e-12);
  }
  EXPECT_EQ(report.cells[0].cc, "reno");
  EXPECT_EQ(report.cells[1].cc, "cubic");
  // The probe really ran each cell's controller (both fully utilize the
  // clean 8 Mbit/s bottleneck, so byte counts alone cannot tell them
  // apart — the transport-visible difference shows on lossy cells, which
  // bench_cc_comparison's shape checks cover).
  EXPECT_EQ(report.cells[0].flows[0].controller, "reno");
  EXPECT_EQ(report.cells[1].flows[0].controller, "cubic");
}

TEST(ExperimentRunner, ReportsAreByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = small_spec();
  core::ParallelRunner one{1};
  core::ParallelRunner four{4};
  RunOptions options_one;
  options_one.runner = &one;
  RunOptions options_four;
  options_four.runner = &four;
  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_four);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_bench_json(), b.to_bench_json());
}

TEST(ExperimentRunner, ShardsPartitionTheMatrixExactly) {
  const ExperimentSpec spec = small_spec();
  const Report full = run_experiment(spec);
  RunOptions shard0;
  shard0.shard_count = 2;
  shard0.shard_index = 0;
  RunOptions shard1;
  shard1.shard_count = 2;
  shard1.shard_index = 1;
  const Report a = run_experiment(spec, shard0);
  const Report b = run_experiment(spec, shard1);
  ASSERT_EQ(a.cells.size() + b.cells.size(), full.cells.size());
  // Shard rows are the exact rows of the full run (same seeds, same
  // samples) — sharding changes where cells run, never what they measure.
  const auto row_json = [](const Report& report, std::size_t i) {
    Report one;
    one.name = report.name;
    one.seed = report.seed;
    one.loads_per_cell = report.loads_per_cell;
    one.total_cells = report.total_cells;
    one.cells = {report.cells[i]};
    return one.to_json();
  };
  EXPECT_EQ(row_json(a, 0), row_json(full, 0));
  EXPECT_EQ(row_json(b, 0), row_json(full, 1));
}

TEST(ExperimentRunner, LoadsOverrideCapsWork) {
  RunOptions options;
  options.loads_override = 1;
  options.transport_probes = false;
  const Report report = run_experiment(small_spec(), options);
  for (const CellResult& cell : report.cells) {
    EXPECT_EQ(cell.plt_ms.size(), 1u);
    EXPECT_FALSE(cell.probe_ran);
  }
}

TEST(ExperimentRunner, MixedFleetCellReportsFairness) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"mixed", {"bbr", "cubic", "cubic"}}};
  const Report report = run_experiment(spec);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellResult& cell = report.cells[0];
  // Page loads run with the heterogeneous fleet plumbed through browser
  // and origin servers.
  EXPECT_EQ(cell.failed_loads, 0u);
  ASSERT_TRUE(cell.probe_ran);
  ASSERT_EQ(cell.flows.size(), 3u);
  EXPECT_EQ(cell.flows[0].controller, "bbr");
  EXPECT_EQ(cell.flows[1].controller, "cubic");
  double total_share = 0;
  for (const FlowResult& flow : cell.flows) {
    EXPECT_GT(flow.bytes_delivered, 0u) << flow.controller << " starved";
    total_share += flow.share;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_GT(cell.jain_index, 0.0);
  EXPECT_LE(cell.jain_index, 1.0);
}

TEST(ExperimentRunner, FleetAxisDegradesPltUnderLoad) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"cubic", {"cubic"}}};
  spec.fleets = {FleetAxis{"solo", 1, 0}, FleetAxis{"crowd", 6, 10'000}};
  RunOptions options;
  options.transport_probes = false;
  const Report report = run_experiment(spec, options);
  ASSERT_EQ(report.cells.size(), 2u);
  const CellResult& solo = report.cells[0];
  const CellResult& crowd = report.cells[1];
  EXPECT_EQ(solo.fleet, "solo");
  EXPECT_EQ(solo.fleet_sessions, 1);
  EXPECT_EQ(crowd.fleet, "crowd");
  EXPECT_EQ(crowd.fleet_sessions, 6);
  // One sample per load for the solo cell; sessions x loads for the crowd.
  EXPECT_EQ(solo.plt_ms.size(), 2u);
  EXPECT_EQ(crowd.plt_ms.size(), 12u);
  EXPECT_EQ(solo.failed_loads + crowd.failed_loads, 0u);
  // Six users contending for the same 8 Mbit/s link and origin servers
  // cannot beat one user having it all to itself.
  EXPECT_GT(crowd.plt_ms.median(), solo.plt_ms.median());
}

TEST(ExperimentRunner, FleetCellsAreByteIdenticalAcrossThreadCounts) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"cubic", {"cubic"}}};
  spec.fleets = {FleetAxis{"crowd", 4, 10'000}};
  core::ParallelRunner one{1};
  core::ParallelRunner four{4};
  RunOptions options_one;
  options_one.runner = &one;
  options_one.transport_probes = false;
  RunOptions options_four = options_one;
  options_four.runner = &four;
  const Report a = run_experiment(spec, options_one);
  const Report b = run_experiment(spec, options_four);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(ExperimentRunner, RejectsBadShards) {
  RunOptions options;
  options.shard_index = 2;
  options.shard_count = 2;
  EXPECT_THROW(run_experiment(small_spec(), options), std::invalid_argument);
}

}  // namespace
}  // namespace mahimahi::experiment
