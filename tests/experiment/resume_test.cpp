// Crash-safe experiment execution, end to end: journaled runs resume to
// byte-identical artifacts after partial completion, torn tails and
// cancellation; mismatched manifests are refused with the field named;
// the virtual-time watchdog converts runaway cells into typed rows; and
// transient worker failures heal through bounded retry without changing a
// byte.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "core/sessions.hpp"
#include "experiment/checkpoint.hpp"
#include "experiment/runner.hpp"
#include "journal/journal.hpp"

namespace mahimahi::experiment {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SiteAxis tiny_site() {
  SiteAxis axis;
  axis.label = "tiny";
  axis.site.name = "tiny";
  axis.site.seed = 7;
  axis.site.server_count = 3;
  axis.site.object_count = 8;
  axis.site.size_scale = 0.25;
  return axis;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "resume-unit";
  spec.seed = 99;
  spec.loads_per_cell = 2;
  spec.probe_duration = 2'000'000;
  spec.sites = {tiny_site()};
  spec.protocols = {web::AppProtocol::kHttp11};
  ShellAxis cable;
  cable.label = "cable";
  ShellLayerSpec delay;
  delay.kind = ShellLayerSpec::Kind::kDelay;
  delay.delay_one_way = 10'000;
  ShellLayerSpec link;
  link.kind = ShellLayerSpec::Kind::kLink;
  link.up_mbps = 8;
  link.down_mbps = 8;
  cable.layers = {delay, link};
  spec.shells = {cable};
  spec.queues = {QueueAxis{"fifo", net::QueueSpec{}}};
  spec.ccs = {CcAxis{"reno", {"reno"}}, CcAxis{"cubic", {"cubic"}}};
  return spec;
}

TEST(ExperimentResume, TaskRecordsRoundTripThroughTheCodec) {
  TaskKey key{5, 1, false};
  EXPECT_EQ(key.label(), "cell5/load1");
  EXPECT_EQ((TaskKey{3, 0, true}.label()), "cell3/probe");

  TaskResult result;
  result.plts = {120.5, 98.25};
  result.oks = {1, 0};
  result.degraded = {110.0, 90.0};
  result.failed_objects = {0, 2};
  result.retries = {1, 0};
  result.timeouts = {0, 1};
  result.error = "";
  result.probe.jain_index = 0.875;
  result.probe.bottleneck.delay_p95_ms = 42.5;
  net::MultiBulkFlowReport::Flow flow;
  flow.controller = "cubic";
  flow.bytes_delivered = 123456;
  flow.throughput_bps = 8.1e6;
  flow.share = 0.5;
  flow.retransmissions = 3;
  result.probe.flows = {flow};
  obs::TraceEvent event;
  event.at = 777;
  event.layer = obs::Layer::kTcp;
  event.kind = obs::EventKind::kTcpConnect;
  event.session = -1;
  event.label = "10.0.0.1:80";
  result.trace.events = {event};

  const std::string payload = encode_task_record(key, result);
  const auto decoded = decode_task_record(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first.cell_index, 5);
  EXPECT_EQ(decoded->first.load_index, 1);
  EXPECT_FALSE(decoded->first.probe);
  const TaskResult& back = decoded->second;
  EXPECT_EQ(back.plts, result.plts);
  EXPECT_EQ(back.oks, result.oks);
  EXPECT_EQ(back.degraded, result.degraded);
  EXPECT_EQ(back.failed_objects, result.failed_objects);
  EXPECT_EQ(back.probe.jain_index, 0.875);
  ASSERT_EQ(back.probe.flows.size(), 1u);
  EXPECT_EQ(back.probe.flows[0].controller, "cubic");
  EXPECT_EQ(back.probe.flows[0].bytes_delivered, 123456u);
  ASSERT_EQ(back.trace.events.size(), 1u);
  EXPECT_EQ(back.trace.events[0].at, 777);
  EXPECT_EQ(back.trace.events[0].label, "10.0.0.1:80");
  EXPECT_NE(back.replayed, 0);  // decode marks provenance

  // A truncated payload decodes to nullopt, never to garbage.
  EXPECT_FALSE(
      decode_task_record(std::string_view{payload}.substr(0, 20)).has_value());
  EXPECT_FALSE(decode_task_record(payload + "x").has_value());
}

/// The kill-and-resume core: journal a *partial* run (shard 0/2 stands in
/// for "the process died halfway" — journal keys are global indices, so a
/// sharded journal is exactly a partial unsharded one), then resume the
/// full matrix and require byte-identical artifacts vs a journal-free
/// clean run, at 1 and 8 threads, with tracing on.
TEST(ExperimentResume, PartialJournalResumesToByteIdenticalArtifacts) {
  const ExperimentSpec spec = small_spec();
  const fs::path journal_dir = fresh_dir("mahi_resume_partial");
  const fs::path trace_clean = fresh_dir("mahi_resume_trace_clean");
  const fs::path trace_resumed = fresh_dir("mahi_resume_trace_resumed");

  // The reference: uninterrupted, journal-free, single-threaded.
  core::ParallelRunner one{1};
  RunOptions clean;
  clean.runner = &one;
  clean.trace_dir = trace_clean.string();
  const Report reference = run_experiment(spec, clean);

  // Phase 1: half the matrix, journaled (the "crashed" run).
  RunOptions phase1;
  phase1.runner = &one;
  phase1.shard_count = 2;
  phase1.shard_index = 0;
  phase1.journal_dir = journal_dir.string();
  phase1.trace_dir = trace_resumed.string();
  run_experiment(spec, phase1);
  ASSERT_TRUE(fs::exists(journal_dir / "MANIFEST"));
  ASSERT_TRUE(fs::exists(journal_dir / "journal.bin"));

  // Phase 2: resume the full matrix on 8 threads. Journaled tasks replay;
  // only the missing ones run.
  core::ParallelRunner eight{8};
  RunOptions phase2;
  phase2.runner = &eight;
  phase2.journal_dir = journal_dir.string();
  phase2.resume = true;
  phase2.trace_dir = trace_resumed.string();
  const Report resumed = run_experiment(spec, phase2);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
  EXPECT_EQ(resumed.to_csv(), reference.to_csv());
  EXPECT_EQ(resumed.to_bench_json(), reference.to_bench_json());
  // Trace artifacts byte-identical too — replayed tasks carried their
  // journaled buffers.
  for (const CellResult& cell : reference.cells) {
    for (const char* suffix : {".trace.json", ".har", ".csv"}) {
      const std::string name = "cell" + std::to_string(cell.index) + suffix;
      EXPECT_EQ(read_bytes(trace_resumed / name),
                read_bytes(trace_clean / name))
          << name << " diverged after resume";
    }
  }
  // The runner wrote its lifecycle log: replays + appends cover every task.
  const std::string events = read_bytes(journal_dir / "events.csv");
  EXPECT_NE(events.find("journal-replay"), std::string::npos);
  EXPECT_NE(events.find("journal-append"), std::string::npos);
}

TEST(ExperimentResume, TornTailIsDiscardedAndHealedOnResume) {
  const ExperimentSpec spec = small_spec();
  const fs::path journal_dir = fresh_dir("mahi_resume_torn");
  const Report reference = run_experiment(spec);

  RunOptions journaled;
  journaled.journal_dir = journal_dir.string();
  run_experiment(spec, journaled);

  // SIGKILL mid-append: cut the journal inside its final record.
  const fs::path journal_file = journal_dir / "journal.bin";
  const std::uintmax_t size = fs::file_size(journal_file);
  fs::resize_file(journal_file, size - 7);

  RunOptions resume;
  resume.journal_dir = journal_dir.string();
  resume.resume = true;
  const Report resumed = run_experiment(spec, resume);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
  EXPECT_EQ(resumed.to_csv(), reference.to_csv());
  // The healed journal is whole again: every record decodes.
  const journal::ReadResult healed =
      journal::read_journal_file(journal_file.string());
  EXPECT_FALSE(healed.torn_tail);
  for (const std::string& record : healed.records) {
    EXPECT_TRUE(decode_task_record(record).has_value());
  }
}

TEST(ExperimentResume, MismatchedManifestIsRefusedWithTheFieldNamed) {
  const ExperimentSpec spec = small_spec();
  const fs::path journal_dir = fresh_dir("mahi_resume_mismatch");
  RunOptions journaled;
  journaled.journal_dir = journal_dir.string();
  run_experiment(spec, journaled);

  // Different seed: different matrix seeds, a different experiment.
  ExperimentSpec edited = spec;
  edited.seed = 100;
  RunOptions resume;
  resume.journal_dir = journal_dir.string();
  resume.resume = true;
  try {
    run_experiment(edited, resume);
    FAIL() << "resume against a different spec must be refused";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("seed"), std::string::npos) << message;
    EXPECT_NE(message.find("--resume"), std::string::npos) << message;
  }

  // Different options (probes off) are refused too — the journal would
  // otherwise replay into a run that never scheduled those tasks.
  RunOptions no_probes = resume;
  no_probes.transport_probes = false;
  EXPECT_THROW(run_experiment(spec, no_probes), std::invalid_argument);

  // Resume without any journal directory is a usage error.
  RunOptions no_dir;
  no_dir.resume = true;
  EXPECT_THROW(run_experiment(spec, no_dir), std::invalid_argument);

  // Resume pointed at a directory that never ran: no manifest to trust.
  RunOptions empty_dir;
  empty_dir.resume = true;
  empty_dir.journal_dir = fresh_dir("mahi_resume_empty").string();
  EXPECT_THROW(run_experiment(spec, empty_dir), std::runtime_error);
}

TEST(ExperimentResume, CancellationYieldsInterruptedReportThenResumes) {
  const ExperimentSpec spec = small_spec();
  const fs::path journal_dir = fresh_dir("mahi_resume_cancel");
  const Report reference = run_experiment(spec);

  // Token already set: every task is skipped at admission — the extreme
  // (deterministic) case of "stop admitting, drain in-flight".
  std::atomic<bool> cancel{true};
  RunOptions cancelled;
  cancelled.journal_dir = journal_dir.string();
  cancelled.cancel = &cancel;
  const Report partial = run_experiment(spec, cancelled);
  EXPECT_TRUE(partial.interrupted);
  for (const CellResult& cell : partial.cells) {
    EXPECT_EQ(cell.loads_done, 0);
    EXPECT_EQ(cell.loads_expected, reference.loads_per_cell);
    EXPECT_EQ(cell.plt_ms.size(), 0u);
  }
  const std::string json = partial.to_json();
  EXPECT_NE(json.find("\"interrupted\": true"), std::string::npos);
  EXPECT_NE(json.find("\"loads_done\": 0"), std::string::npos);
  // Complete runs never carry the key — byte-stability of the clean path.
  EXPECT_EQ(reference.to_json().find("interrupted"), std::string::npos);
  // The cancelled run journaled nothing it didn't do, and its events.csv
  // records the cancellations.
  EXPECT_NE(read_bytes(journal_dir / "events.csv").find("task-cancelled"),
            std::string::npos);

  // Resume with the token clear: the journal (empty but valid) replays
  // nothing; everything runs; bytes match the uninterrupted reference.
  cancel.store(false);
  RunOptions resume;
  resume.journal_dir = journal_dir.string();
  resume.resume = true;
  resume.cancel = &cancel;
  const Report resumed = run_experiment(spec, resume);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
}

TEST(ExperimentResume, WatchdogConvertsRunawayCellsIntoTypedRows) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"reno", {"reno"}}};
  RunOptions options;
  options.transport_probes = false;

  // Generous deadline: nothing trips, and the report is byte-identical to
  // a watchdog-free run (the deadline only bounds, never perturbs).
  ExperimentSpec relaxed = spec;
  relaxed.cell_deadline = 600'000'000;  // 10 virtual minutes
  const Report no_watchdog = run_experiment(spec, options);
  const Report with_watchdog = run_experiment(relaxed, options);
  EXPECT_EQ(with_watchdog.to_json(), no_watchdog.to_json());

  // 1 ms of virtual time: no page load can finish — every load becomes a
  // typed "watchdog:" failed row and the run completes instead of hanging.
  ExperimentSpec strict = spec;
  strict.cell_deadline = 1'000;
  const Report tripped = run_experiment(strict, options);
  ASSERT_EQ(tripped.cells.size(), 1u);
  const CellResult& cell = tripped.cells[0];
  EXPECT_EQ(cell.plt_ms.size(), 0u);
  EXPECT_EQ(static_cast<int>(cell.load_errors.size()),
            tripped.loads_per_cell);
  for (const std::string& error : cell.load_errors) {
    EXPECT_NE(error.find("watchdog:"), std::string::npos) << error;
  }
  // Deterministic failure: identical at another thread count.
  core::ParallelRunner four{4};
  RunOptions threaded = options;
  threaded.runner = &four;
  EXPECT_EQ(run_experiment(strict, threaded).to_json(), tripped.to_json());
}

TEST(ExperimentResume, FleetWatchdogCoversTheWholeMux) {
  ExperimentSpec spec = small_spec();
  spec.ccs = {CcAxis{"cubic", {"cubic"}}};
  spec.fleets = {FleetAxis{"crowd", 4, 10'000}};
  spec.cell_deadline = 1'000;  // 1 ms: the shared world cannot finish
  RunOptions options;
  options.transport_probes = false;
  const Report report = run_experiment(spec, options);
  ASSERT_EQ(report.cells.size(), 1u);
  for (const std::string& error : report.cells[0].load_errors) {
    EXPECT_NE(error.find("watchdog: fleet load"), std::string::npos) << error;
    EXPECT_NE(error.find("sessions complete"), std::string::npos) << error;
  }
}

TEST(ExperimentResume, TransientFailuresHealThroughBoundedRetry) {
  ExperimentSpec spec = small_spec();
  const Report reference = run_experiment(spec);

  // Every task's first attempt fails transiently; one retry heals it.
  ExperimentSpec retrying = spec;
  retrying.task_retries = 1;
  RunOptions flaky;
  flaky.transient_fault = [](int, int, bool, std::uint32_t attempt) {
    return attempt == 1;
  };
  const Report healed = run_experiment(retrying, flaky);
  EXPECT_EQ(healed.to_json(), reference.to_json());
  EXPECT_EQ(healed.to_csv(), reference.to_csv());

  // Without retry budget the same fault is a failed row, not a crash.
  RunOptions no_budget;
  no_budget.transient_fault = [](int, int, bool, std::uint32_t) {
    return true;
  };
  const Report failed = run_experiment(spec, no_budget);
  for (const CellResult& cell : failed.cells) {
    EXPECT_EQ(cell.plt_ms.size(), 0u);
    ASSERT_FALSE(cell.load_errors.empty());
    EXPECT_NE(cell.load_errors[0].find("transient:"), std::string::npos);
  }
}

TEST(ExperimentResume, FreshJournalRunStartsTheLogOver) {
  const ExperimentSpec spec = small_spec();
  const fs::path journal_dir = fresh_dir("mahi_resume_restart");
  RunOptions journaled;
  journaled.journal_dir = journal_dir.string();
  run_experiment(spec, journaled);
  const std::uintmax_t first_size = fs::file_size(journal_dir / "journal.bin");

  // A second journaled run WITHOUT --resume is a fresh start, not an
  // append: same record count, not double.
  run_experiment(spec, journaled);
  EXPECT_EQ(fs::file_size(journal_dir / "journal.bin"), first_size);
}

}  // namespace
}  // namespace mahimahi::experiment
