// Fault-spec parser and fault-plan purity tests. The plan's determinism
// contract — every decision is a pure function of (plan seed, stream,
// index) — is what lets faulted experiments stay byte-identical at any
// thread or shard count.

#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mahimahi::fault {
namespace {

using namespace mahimahi::literals;

TEST(FaultSpecParser, NoneParsesToEmptySpec) {
  const FaultSpec spec = parse_fault_spec("none");
  EXPECT_FALSE(spec.any());
  EXPECT_FALSE(spec.flap.has_value());
  EXPECT_FALSE(spec.corrupt.has_value());
  EXPECT_FALSE(spec.origin.any());
  EXPECT_FALSE(spec.dns.any());
}

TEST(FaultSpecParser, ParsesFullLadder) {
  const FaultSpec spec = parse_fault_spec(
      "flap:period=5s,down=400ms,offset=2s + corrupt:rate=0.001 "
      "crash:p=0.1,frac=0.25 stall:p=0.05 slowstart:delay=200ms "
      "dns:fail=0.1,drop=0.2 retry:deadline=4s,max=3,base=250ms,cap=2s,jitter=0.2");
  EXPECT_TRUE(spec.any());
  ASSERT_TRUE(spec.flap.has_value());
  EXPECT_EQ(spec.flap->period, 5_s);
  EXPECT_EQ(spec.flap->down, 400_ms);
  EXPECT_EQ(spec.flap->offset, 2_s);
  ASSERT_TRUE(spec.corrupt.has_value());
  EXPECT_DOUBLE_EQ(spec.corrupt->rate, 0.001);
  EXPECT_DOUBLE_EQ(spec.origin.crash_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.origin.crash_fraction, 0.25);
  EXPECT_DOUBLE_EQ(spec.origin.stall_rate, 0.05);
  EXPECT_EQ(spec.origin.slow_start, 200_ms);
  EXPECT_DOUBLE_EQ(spec.dns.fail_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.dns.drop_rate, 0.2);
  EXPECT_FALSE(spec.client.no_retry);
  EXPECT_EQ(spec.client.request_deadline, 4_s);
  EXPECT_EQ(spec.client.max_retries, 3);
  EXPECT_EQ(spec.client.backoff_base, 250_ms);
  EXPECT_EQ(spec.client.backoff_max, 2_s);
  EXPECT_DOUBLE_EQ(spec.client.backoff_jitter, 0.2);
}

TEST(FaultSpecParser, NoRetryMarksUndefendedBaseline) {
  const FaultSpec spec = parse_fault_spec("crash:p=0.2 noretry");
  EXPECT_TRUE(spec.client.no_retry);
  EXPECT_DOUBLE_EQ(spec.origin.crash_rate, 0.2);
}

TEST(FaultSpecParser, RejectsMalformedSpecs) {
  // 'none' is exclusive; probabilities live in [0, 1]; flap needs
  // 0 < down < period; retry needs 0 < base <= cap; unknown tokens and
  // duplicate keys are errors, never silently ignored.
  EXPECT_THROW(parse_fault_spec("none crash:p=0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:p=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:p=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("flap:period=1s,down=2s"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("flap:period=1s"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("retry:deadline=1s,max=2,base=2s,cap=1s"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("warp:speed=9"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:p=0.1,p=0.2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:p=0.1 crash:p=0.2"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec(""), std::invalid_argument);
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedStreamIndex) {
  const FaultSpec spec = parse_fault_spec("crash:p=0.3 dns:fail=0.3");
  const FaultPlan a{spec, 42};
  const FaultPlan b{spec, 42};
  for (std::uint64_t i = 0; i < 200; ++i) {
    // Same seed: identical answers, in any query order (no hidden state).
    EXPECT_EQ(a.chance("s", i, 0.3), b.chance("s", i, 0.3));
    EXPECT_EQ(a.server_fault(0, i).kind, b.server_fault(0, i).kind);
    EXPECT_EQ(a.dns_query_fault(i), b.dns_query_fault(i));
  }
  // Re-asking out of order changes nothing.
  EXPECT_EQ(a.server_fault(0, 7).kind, b.server_fault(0, 7).kind);
}

TEST(FaultPlan, StreamsAndSeedsDecorrelate) {
  const FaultSpec spec = parse_fault_spec("crash:p=0.5");
  const FaultPlan a{spec, 1};
  const FaultPlan b{spec, 2};
  int differing_seeds = 0;
  int differing_servers = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    differing_seeds +=
        a.server_fault(0, i).kind != b.server_fault(0, i).kind ? 1 : 0;
    differing_servers +=
        a.server_fault(0, i).kind != a.server_fault(1, i).kind ? 1 : 0;
  }
  // Different plan seeds — and different server indices — must not replay
  // the same coin flips.
  EXPECT_GT(differing_seeds, 0);
  EXPECT_GT(differing_servers, 0);
}

TEST(FaultPlan, ChanceRespectsProbabilityBounds) {
  const FaultPlan plan{parse_fault_spec("crash:p=0.5"), 9};
  int hits = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_FALSE(plan.chance("edge", i, 0.0));
    EXPECT_TRUE(plan.chance("edge", i, 1.0));
    hits += plan.chance("rate", i, 0.25) ? 1 : 0;
  }
  // Law of large numbers, loose bounds: ~500 expected.
  EXPECT_GT(hits, 350);
  EXPECT_LT(hits, 650);
}

TEST(FaultPlan, SlowStartDecaysOverFirstRequests) {
  FaultSpec spec;
  spec.origin.slow_start = 400_ms;
  const FaultPlan plan{spec, 3};
  const auto extra = [&](std::uint64_t request) {
    return plan.server_fault(0, request).extra_delay;
  };
  EXPECT_EQ(extra(0), 400_ms);
  EXPECT_GT(extra(0), extra(1));
  EXPECT_GT(extra(1), extra(2));
  EXPECT_GT(extra(2), extra(3));
  EXPECT_EQ(extra(4), 0);  // warmed up
  EXPECT_EQ(extra(100), 0);
}

TEST(FaultPlan, InactivePlanNeverInjects) {
  const FaultPlan plan{};  // default: no spec, no faults
  EXPECT_FALSE(plan.active());
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(plan.server_fault(0, i).kind, net::ServerFault::Kind::kNone);
    EXPECT_EQ(plan.dns_query_fault(i), net::DnsFault::kNone);
  }
}

}  // namespace
}  // namespace mahimahi::fault
