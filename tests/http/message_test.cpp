#include "http/message.hpp"

#include <gtest/gtest.h>

namespace mahimahi::http {
namespace {

TEST(Request, HostStripsPortAndLowercases) {
  Request r;
  r.headers.add("Host", "WWW.Example.COM:8080");
  EXPECT_EQ(r.host(), "www.example.com");
}

TEST(Request, HostEmptyWhenAbsent) {
  EXPECT_EQ(Request{}.host(), "");
}

TEST(Request, UrlFromOriginFormUsesHostHeader) {
  Request r;
  r.target = "/a/b?c=d";
  r.headers.add("Host", "site.test:8000");
  const Url url = r.url();
  EXPECT_EQ(url.host, "site.test");
  EXPECT_EQ(url.port, 8000);
  EXPECT_EQ(url.path, "/a/b");
  EXPECT_EQ(url.query, "c=d");
}

TEST(Request, UrlFromAbsoluteFormTarget) {
  Request r;
  r.target = "http://other.test/x";
  r.headers.add("Host", "ignored.test");
  const Url url = r.url();
  EXPECT_EQ(url.host, "other.test");
  EXPECT_EQ(url.path, "/x");
}

TEST(KeepAlive, Http11DefaultsOn) {
  Request r;
  EXPECT_TRUE(r.keep_alive());
  r.headers.add("Connection", "close");
  EXPECT_FALSE(r.keep_alive());
}

TEST(KeepAlive, Http10DefaultsOff) {
  Response resp;
  resp.version = "HTTP/1.0";
  EXPECT_FALSE(resp.keep_alive());
  resp.headers.add("Connection", "Keep-Alive");
  EXPECT_TRUE(resp.keep_alive());
}

TEST(ToBytes, RequestWireFormat) {
  Request r;
  r.method = Method::kGet;
  r.target = "/index.html";
  r.headers.add("Host", "example.com");
  r.headers.add("Accept", "*/*");
  EXPECT_EQ(to_bytes(r),
            "GET /index.html HTTP/1.1\r\n"
            "Host: example.com\r\n"
            "Accept: */*\r\n"
            "\r\n");
}

TEST(ToBytes, ResponseWireFormatWithBody) {
  Response resp = make_ok("hello", "text/plain");
  EXPECT_EQ(to_bytes(resp),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 5\r\n"
            "\r\n"
            "hello");
}

TEST(FinalizeContentLength, SkipsWhenChunked) {
  Response resp;
  resp.headers.add("Transfer-Encoding", "chunked");
  resp.body = "ignored-framing";
  finalize_content_length(resp);
  EXPECT_FALSE(resp.headers.contains("Content-Length"));
}

TEST(FinalizeContentLength, SkipsWhenBodyEmpty) {
  Request r;
  finalize_content_length(r);
  EXPECT_FALSE(r.headers.contains("Content-Length"));
}

TEST(FinalizeContentLength, OverwritesStaleValue) {
  Response resp;
  resp.headers.add("Content-Length", "999");
  resp.body = "abc";
  finalize_content_length(resp);
  EXPECT_EQ(resp.headers.get("Content-Length"), "3");
}

TEST(MakeGet, BuildsHostHeaderWithPort) {
  const Request r = make_get("http://h.test:81/p?q=1");
  EXPECT_EQ(r.method, Method::kGet);
  EXPECT_EQ(r.target, "/p?q=1");
  EXPECT_EQ(r.headers.get("Host"), "h.test:81");
}

TEST(MakeNotFound, CarriesTargetInBody) {
  const Response resp = make_not_found("/missing");
  EXPECT_EQ(resp.status, 404);
  EXPECT_NE(resp.body.find("/missing"), std::string::npos);
  EXPECT_EQ(resp.headers.get("Content-Length"),
            std::to_string(resp.body.size()));
}

TEST(MethodTable, RoundTrips) {
  for (const Method m :
       {Method::kGet, Method::kHead, Method::kPost, Method::kPut, Method::kDelete,
        Method::kOptions, Method::kTrace, Method::kConnect, Method::kPatch}) {
    const auto parsed = parse_method(method_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_method("get").has_value());  // case-sensitive
  EXPECT_FALSE(parse_method("BREW").has_value());
}

}  // namespace
}  // namespace mahimahi::http
