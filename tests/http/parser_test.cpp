#include "http/parser.hpp"

#include <gtest/gtest.h>

namespace mahimahi::http {
namespace {

TEST(RequestParser, SimpleGetNoBody) {
  RequestParser p;
  p.push("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n");
  ASSERT_TRUE(p.has_message());
  const Request r = p.pop();
  EXPECT_EQ(r.method, Method::kGet);
  EXPECT_EQ(r.target, "/index.html");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.headers.get("Host"), "example.com");
  EXPECT_TRUE(r.body.empty());
  EXPECT_FALSE(p.failed());
}

TEST(RequestParser, PostWithContentLength) {
  RequestParser p;
  p.push("POST /submit HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\nhello world");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().body, "hello world");
}

TEST(RequestParser, ByteAtATime) {
  RequestParser p;
  const std::string wire =
      "POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc";
  for (const char c : wire) {
    p.push(std::string_view{&c, 1});
  }
  ASSERT_TRUE(p.has_message());
  const Request r = p.pop();
  EXPECT_EQ(r.body, "abc");
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(RequestParser, PipelinedRequests) {
  RequestParser p;
  p.push(
      "GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_EQ(p.pending(), 2u);
  EXPECT_EQ(p.pop().target, "/a");
  EXPECT_EQ(p.pop().target, "/b");
}

TEST(RequestParser, ChunkedBodyWithExtensionsAndTrailers) {
  RequestParser p;
  p.push(
      "POST /up HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;ext=1\r\nWiki\r\n"
      "5\r\npedia\r\n"
      "0\r\n"
      "X-Trailer: yes\r\n"
      "\r\n");
  ASSERT_TRUE(p.has_message());
  const Request r = p.pop();
  EXPECT_EQ(r.body, "Wikipedia");
  EXPECT_EQ(r.headers.get("X-Trailer"), "yes");
}

TEST(RequestParser, ToleratesBareLfAndLeadingBlankLines) {
  RequestParser p;
  p.push("\r\n\r\nGET / HTTP/1.1\nHost: h\n\n");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().target, "/");
}

TEST(RequestParser, HeaderValueWhitespaceTrimmed) {
  RequestParser p;
  p.push("GET / HTTP/1.1\r\nHost:    spaced.test   \r\n\r\n");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().headers.get("Host"), "spaced.test");
}

TEST(RequestParser, RejectsBadMethod) {
  RequestParser p;
  p.push("BREW /pot HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_FALSE(p.has_message());
  EXPECT_NE(p.error_message().find("BREW"), std::string::npos);
}

TEST(RequestParser, RejectsMalformedRequestLine) {
  RequestParser p;
  p.push("GET /missing-version\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, RejectsBadContentLength) {
  RequestParser p;
  p.push("POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, RejectsSpaceBeforeColon) {
  RequestParser p;
  p.push("GET / HTTP/1.1\r\nHost : h\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, RejectsHeaderLineWithoutColon) {
  RequestParser p;
  p.push("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, RejectsBadChunkSize) {
  RequestParser p;
  p.push(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "zz\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, IgnoresInputAfterFailure) {
  RequestParser p;
  p.push("BAD\r\n\r\n");
  ASSERT_TRUE(p.failed());
  p.push("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(p.has_message());
}

TEST(RequestParser, CloseMidMessageFails) {
  RequestParser p;
  p.push("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  EXPECT_FALSE(p.has_message());
  p.on_close();
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, CleanCloseAfterCompleteMessageIsFine) {
  RequestParser p;
  p.push("GET / HTTP/1.1\r\n\r\n");
  p.on_close();
  EXPECT_FALSE(p.failed());
  EXPECT_TRUE(p.has_message());
}

TEST(ResponseParser, SimpleResponse) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  p.push("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
  ASSERT_TRUE(p.has_message());
  const Response r = p.pop();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.reason, "OK");
  EXPECT_EQ(r.body, "hi");
}

TEST(ResponseParser, HeadResponseHasNoBodyDespiteContentLength) {
  ResponseParser p;
  p.notify_request(Method::kHead);
  p.notify_request(Method::kGet);
  p.push("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n");
  ASSERT_TRUE(p.has_message());
  EXPECT_TRUE(p.pop().body.empty());
  // The following GET's response still parses normally.
  p.push("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().body, "ok");
}

TEST(ResponseParser, NoBodyStatuses) {
  for (const int status : {204, 304}) {
    ResponseParser p;
    p.notify_request(Method::kGet);
    p.push("HTTP/1.1 " + std::to_string(status) + " X\r\nContent-Length: 5\r\n\r\n");
    ASSERT_TRUE(p.has_message()) << status;
    EXPECT_TRUE(p.pop().body.empty());
  }
}

TEST(ResponseParser, InterimResponseDoesNotConsumeMethod) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  p.push("HTTP/1.1 100 Continue\r\n\r\n");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().status, 100);
  p.push("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\ndone");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().body, "done");
}

TEST(ResponseParser, ReadToCloseFraming) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  p.push("HTTP/1.1 200 OK\r\n\r\npartial body, no length");
  EXPECT_FALSE(p.has_message());
  p.push(" ... more");
  p.on_close();
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().body, "partial body, no length ... more");
}

TEST(ResponseParser, ChunkedResponse) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  p.push(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "a\r\n0123456789\r\n0\r\n\r\n");
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.pop().body, "0123456789");
}

TEST(ResponseParser, EmptyReasonPhraseAccepted) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  p.push("HTTP/1.1 404 \r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(p.has_message());
  const Response r = p.pop();
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.reason, "");
}

TEST(ResponseParser, RejectsBadStatusCode) {
  ResponseParser p;
  p.push("HTTP/1.1 99 Too Low\r\n\r\n");
  EXPECT_TRUE(p.failed());
  ResponseParser q;
  q.push("HTTP/1.1 abc Bad\r\n\r\n");
  EXPECT_TRUE(q.failed());
}

TEST(ResponseParser, RejectsNonHttpStartLine) {
  ResponseParser p;
  p.push("SIP/2.0 200 OK\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(ResponseParser, MissingChunkCrlfFails) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  p.push(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabcX\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(ResponseParser, HeaderSectionLimitEnforced) {
  ResponseParser p;
  p.notify_request(Method::kGet);
  std::string huge = "HTTP/1.1 200 OK\r\n";
  huge += "X-Pad: " + std::string(MessageParser::kMaxHeaderBytes + 10, 'a') + "\r\n";
  p.push(huge);
  EXPECT_TRUE(p.failed());
}

}  // namespace
}  // namespace mahimahi::http
