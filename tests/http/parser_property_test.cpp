// Property tests: serialize -> fragment -> parse must round-trip any
// well-formed message, for every framing mode and fragmentation pattern.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "util/random.hpp"

namespace mahimahi::http {
namespace {

enum class BodyMode { kNone, kContentLength, kChunked };

std::string chunk_encode(std::string_view body, std::size_t chunk_size,
                         util::Rng& rng) {
  std::string out;
  std::size_t offset = 0;
  while (offset < body.size()) {
    const std::size_t take =
        std::min<std::size_t>(chunk_size + static_cast<std::size_t>(rng.uniform_int(0, 7)),
                              body.size() - offset);
    char size_line[32];
    std::snprintf(size_line, sizeof size_line, "%zx\r\n", take);
    out += size_line;
    out.append(body.substr(offset, take));
    out += "\r\n";
    offset += take;
  }
  out += "0\r\n\r\n";
  return out;
}

std::string random_token(util::Rng& rng, std::size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.uniform_int(0, sizeof kAlphabet - 2)];
  }
  return out;
}

std::string random_body(util::Rng& rng, std::size_t len) {
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Full byte range: bodies are binary-safe.
    out += static_cast<char>(rng.uniform_int(0, 255));
  }
  return out;
}

// (seed, fragment size, body mode)
using ParamTuple = std::tuple<int, int, BodyMode>;

class RequestRoundTrip : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(RequestRoundTrip, SerializeFragmentParse) {
  const auto [seed, fragment, mode] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(seed) * 7919 + 13};

  Request original;
  original.method = Method::kPost;
  original.target = "/" + random_token(rng, 1 + rng.uniform_int(0, 40));
  const int header_count = static_cast<int>(rng.uniform_int(0, 12));
  original.headers.add("Host", random_token(rng, 10) + ".test");
  for (int i = 0; i < header_count; ++i) {
    original.headers.add("X-" + random_token(rng, 6), random_token(rng, 24));
  }
  const std::size_t body_len =
      mode == BodyMode::kNone ? 0
                              : static_cast<std::size_t>(rng.uniform_int(1, 5000));
  const std::string body = random_body(rng, body_len);

  std::string wire;
  switch (mode) {
    case BodyMode::kNone:
      wire = to_bytes(original);
      break;
    case BodyMode::kContentLength:
      original.body = body;
      finalize_content_length(original);
      wire = to_bytes(original);
      break;
    case BodyMode::kChunked: {
      original.headers.add("Transfer-Encoding", "chunked");
      Request headers_only = original;
      headers_only.body.clear();
      wire = to_bytes(headers_only);
      wire += chunk_encode(body, 97, rng);
      original.body = body;
      break;
    }
  }

  RequestParser parser;
  for (std::size_t offset = 0; offset < wire.size();
       offset += static_cast<std::size_t>(fragment)) {
    parser.push(std::string_view{wire}.substr(offset, static_cast<std::size_t>(fragment)));
  }
  ASSERT_FALSE(parser.failed()) << parser.error_message();
  ASSERT_TRUE(parser.has_message());
  const Request parsed = parser.pop();

  EXPECT_EQ(parsed.method, original.method);
  EXPECT_EQ(parsed.target, original.target);
  EXPECT_EQ(parsed.body, original.body);
  // Every original header must be present with identical value.
  for (const auto& field : original.headers) {
    EXPECT_EQ(parsed.headers.get(field.name), field.value) << field.name;
  }
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RequestRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 7, 64, 1 << 20),
                       ::testing::Values(BodyMode::kNone, BodyMode::kContentLength,
                                         BodyMode::kChunked)));

class ResponseRoundTrip : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(ResponseRoundTrip, SerializeFragmentParse) {
  const auto [seed, fragment, mode] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(seed) * 104729 + 7};

  Response original;
  original.status = 200;
  original.reason = "OK";
  const int header_count = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < header_count; ++i) {
    original.headers.add("X-" + random_token(rng, 6), random_token(rng, 24));
  }
  const std::size_t body_len =
      mode == BodyMode::kNone ? 0
                              : static_cast<std::size_t>(rng.uniform_int(1, 5000));
  const std::string body = random_body(rng, body_len);

  std::string wire;
  bool close_to_finish = false;
  switch (mode) {
    case BodyMode::kNone:
      // Exercise read-to-close framing: body with no length header.
      original.body = body;
      wire = to_bytes(original);
      close_to_finish = true;
      break;
    case BodyMode::kContentLength:
      original.body = body;
      finalize_content_length(original);
      wire = to_bytes(original);
      break;
    case BodyMode::kChunked: {
      original.headers.add("Transfer-Encoding", "chunked");
      Response headers_only = original;
      headers_only.body.clear();
      wire = to_bytes(headers_only);
      wire += chunk_encode(body, 53, rng);
      original.body = body;
      break;
    }
  }

  ResponseParser parser;
  parser.notify_request(Method::kGet);
  for (std::size_t offset = 0; offset < wire.size();
       offset += static_cast<std::size_t>(fragment)) {
    parser.push(std::string_view{wire}.substr(offset, static_cast<std::size_t>(fragment)));
  }
  if (close_to_finish) {
    parser.on_close();
  }
  ASSERT_FALSE(parser.failed()) << parser.error_message();
  ASSERT_TRUE(parser.has_message());
  const Response parsed = parser.pop();

  EXPECT_EQ(parsed.status, original.status);
  EXPECT_EQ(parsed.body, original.body);
  for (const auto& field : original.headers) {
    EXPECT_EQ(parsed.headers.get(field.name), field.value) << field.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResponseRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 7, 64, 1 << 20),
                       ::testing::Values(BodyMode::kNone, BodyMode::kContentLength,
                                         BodyMode::kChunked)));

// Pipelining property: N serialized requests pushed as one buffer parse
// back as exactly N messages in order.
class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, NRequestsRoundTrip) {
  const int n = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(n) + 1000};
  std::string wire;
  std::vector<std::string> targets;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.target = "/obj-" + std::to_string(i) + "-" + random_token(rng, 5);
    r.headers.add("Host", "pipeline.test");
    if (rng.chance(0.5)) {
      r.body = random_body(rng, static_cast<std::size_t>(rng.uniform_int(1, 200)));
      finalize_content_length(r);
    }
    targets.push_back(r.target);
    wire += to_bytes(r);
  }
  RequestParser parser;
  parser.push(wire);
  ASSERT_FALSE(parser.failed()) << parser.error_message();
  ASSERT_EQ(parser.pending(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(parser.pop().target, targets[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineProperty, ::testing::Values(1, 2, 5, 20, 100));

}  // namespace
}  // namespace mahimahi::http
