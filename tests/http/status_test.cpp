#include "http/status.hpp"

#include <gtest/gtest.h>

namespace mahimahi::http {
namespace {

TEST(StatusClasses, BoundariesAreExact) {
  EXPECT_TRUE(is_informational(100));
  EXPECT_TRUE(is_informational(199));
  EXPECT_FALSE(is_informational(200));
  EXPECT_TRUE(is_success(200));
  EXPECT_TRUE(is_success(299));
  EXPECT_FALSE(is_success(300));
  EXPECT_TRUE(is_redirect(301));
  EXPECT_FALSE(is_redirect(400));
  EXPECT_TRUE(is_client_error(404));
  EXPECT_FALSE(is_client_error(500));
  EXPECT_TRUE(is_server_error(503));
  EXPECT_FALSE(is_server_error(600));
}

TEST(StatusClasses, ExactlyOneClassPerCode) {
  for (int code = 100; code < 600; ++code) {
    const int classes = (is_informational(code) ? 1 : 0) +
                        (is_success(code) ? 1 : 0) + (is_redirect(code) ? 1 : 0) +
                        (is_client_error(code) ? 1 : 0) +
                        (is_server_error(code) ? 1 : 0);
    EXPECT_EQ(classes, 1) << code;
  }
}

TEST(ReasonPhrase, KnownAndUnknownCodes) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(304), "Not Modified");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(503), "Service Unavailable");
  EXPECT_EQ(reason_phrase(299), "Unknown");
  EXPECT_EQ(reason_phrase(0), "Unknown");
}

TEST(StatusHasNoBody, MatchesRfc7230) {
  EXPECT_TRUE(status_has_no_body(100));
  EXPECT_TRUE(status_has_no_body(101));
  EXPECT_TRUE(status_has_no_body(204));
  EXPECT_TRUE(status_has_no_body(304));
  EXPECT_FALSE(status_has_no_body(200));
  EXPECT_FALSE(status_has_no_body(206));
  EXPECT_FALSE(status_has_no_body(404));
}

}  // namespace
}  // namespace mahimahi::http
