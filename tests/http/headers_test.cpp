#include "http/headers.hpp"

#include <gtest/gtest.h>

namespace mahimahi::http {
namespace {

TEST(HeaderMap, GetIsCaseInsensitive) {
  HeaderMap h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("content-length").has_value());
}

TEST(HeaderMap, PreservesInsertionOrderAndSpelling) {
  HeaderMap h;
  h.add("X-b", "2");
  h.add("X-A", "1");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.fields()[0].name, "X-b");
  EXPECT_EQ(h.fields()[1].name, "X-A");
}

TEST(HeaderMap, GetAllReturnsDuplicatesInOrder) {
  HeaderMap h;
  h.add("Set-Cookie", "a=1");
  h.add("Other", "x");
  h.add("set-cookie", "b=2");
  const auto all = h.get_all("Set-Cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a=1");
  EXPECT_EQ(all[1], "b=2");
}

TEST(HeaderMap, SetReplacesFirstAndDropsRest) {
  HeaderMap h;
  h.add("Cache-Control", "no-cache");
  h.add("cache-control", "private");
  h.set("Cache-Control", "max-age=60");
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h.get("cache-control"), "max-age=60");
}

TEST(HeaderMap, SetAddsWhenAbsent) {
  HeaderMap h;
  h.set("Host", "example.com");
  EXPECT_EQ(h.get("host"), "example.com");
}

TEST(HeaderMap, RemoveReturnsCount) {
  HeaderMap h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  EXPECT_EQ(h.remove("A"), 2u);
  EXPECT_EQ(h.remove("A"), 0u);
  EXPECT_EQ(h.size(), 1u);
}

TEST(HeaderMap, GetOrFallback) {
  HeaderMap h;
  EXPECT_EQ(h.get_or("Connection", "keep-alive"), "keep-alive");
  h.add("Connection", "close");
  EXPECT_EQ(h.get_or("Connection", "keep-alive"), "close");
}

TEST(HeaderMap, EqualityIsExact) {
  HeaderMap a{{"X", "1"}};
  HeaderMap b{{"x", "1"}};  // different spelling -> not equal values
  EXPECT_NE(a, b);
  HeaderMap c{{"X", "1"}};
  EXPECT_EQ(a, c);
}

TEST(ValueHasToken, CommaListCaseInsensitive) {
  EXPECT_TRUE(value_has_token("keep-alive, Upgrade", "upgrade"));
  EXPECT_TRUE(value_has_token("close", "CLOSE"));
  EXPECT_FALSE(value_has_token("keep-alive", "close"));
  EXPECT_TRUE(value_has_token(" chunked ", "chunked"));
  EXPECT_FALSE(value_has_token("notchunked", "chunked"));
}

}  // namespace
}  // namespace mahimahi::http
