#include "http/url.hpp"

#include <gtest/gtest.h>

namespace mahimahi::http {
namespace {

TEST(ParseUrl, AbsoluteForm) {
  const auto url = parse_url("http://www.example.com/index.html?a=1");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->port, 0);
  EXPECT_EQ(url->effective_port(), 80);
  EXPECT_EQ(url->path, "/index.html");
  EXPECT_EQ(url->query, "a=1");
}

TEST(ParseUrl, ExplicitPortAndHttps) {
  const auto url = parse_url("https://cdn.example.com:8443/x");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->port, 8443);
  EXPECT_EQ(url->effective_port(), 8443);
  const auto bare = parse_url("https://cdn.example.com/x");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->effective_port(), 443);
}

TEST(ParseUrl, HostOnlyGetsRootPath) {
  const auto url = parse_url("http://example.com");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->request_target(), "/");
}

TEST(ParseUrl, OriginForm) {
  const auto url = parse_url("/a/b.css?v=2");
  ASSERT_TRUE(url.has_value());
  EXPECT_TRUE(url->host.empty());
  EXPECT_EQ(url->path, "/a/b.css");
  EXPECT_EQ(url->query, "v=2");
}

TEST(ParseUrl, LowercasesHostAndScheme) {
  const auto url = parse_url("HTTP://WWW.Example.COM/Path");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->path, "/Path");  // path case is preserved
}

TEST(ParseUrl, RejectsGarbage) {
  EXPECT_FALSE(parse_url("").has_value());
  EXPECT_FALSE(parse_url("ftp://example.com/").has_value());
  EXPECT_FALSE(parse_url("example.com/path").has_value());
  EXPECT_FALSE(parse_url("http://:80/").has_value());
  EXPECT_FALSE(parse_url("http://host:0/").has_value());
  EXPECT_FALSE(parse_url("http://host:99999/").has_value());
  EXPECT_FALSE(parse_url("http://host:abc/").has_value());
}

TEST(Url, ToStringRoundTrip) {
  const auto url = parse_url("https://h.example:444/p/q?x=y");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->to_string(), "https://h.example:444/p/q?x=y");
  const auto again = parse_url(url->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *url);
}

TEST(ResolveReference, AbsoluteRefWins) {
  const auto base = parse_url("http://a.com/dir/page.html");
  const auto out = resolve_reference(*base, "https://b.com/x.js");
  EXPECT_EQ(out.host, "b.com");
  EXPECT_EQ(out.scheme, "https");
  EXPECT_EQ(out.path, "/x.js");
}

TEST(ResolveReference, SchemeRelative) {
  const auto base = parse_url("https://a.com/dir/");
  const auto out = resolve_reference(*base, "//cdn.com/lib.js");
  EXPECT_EQ(out.scheme, "https");
  EXPECT_EQ(out.host, "cdn.com");
  EXPECT_EQ(out.path, "/lib.js");
}

TEST(ResolveReference, AbsolutePathKeepsOrigin) {
  const auto base = parse_url("http://a.com:8080/dir/page.html?q=1");
  const auto out = resolve_reference(*base, "/img/logo.png");
  EXPECT_EQ(out.host, "a.com");
  EXPECT_EQ(out.port, 8080);
  EXPECT_EQ(out.path, "/img/logo.png");
  EXPECT_EQ(out.query, "");
}

TEST(ResolveReference, RelativePathAgainstDirectory) {
  const auto base = parse_url("http://a.com/dir/page.html");
  const auto out = resolve_reference(*base, "style.css?v=3");
  EXPECT_EQ(out.path, "/dir/style.css");
  EXPECT_EQ(out.query, "v=3");
}

TEST(ResolveReference, EmptyRefReturnsBase) {
  const auto base = parse_url("http://a.com/p");
  EXPECT_EQ(resolve_reference(*base, ""), *base);
}

}  // namespace
}  // namespace mahimahi::http
