#include "http/mime.hpp"

#include <gtest/gtest.h>

namespace mahimahi::http {
namespace {

TEST(ContentTypeForPath, CommonExtensions) {
  EXPECT_EQ(content_type_for_path("/index.html"), "text/html");
  EXPECT_EQ(content_type_for_path("/a/b/style.css"), "text/css");
  EXPECT_EQ(content_type_for_path("/app.js"), "application/javascript");
  EXPECT_EQ(content_type_for_path("/pic.JPG"), "image/jpeg");
  EXPECT_EQ(content_type_for_path("/font.woff2"), "font/woff2");
}

TEST(ContentTypeForPath, NoExtensionDefaultsToHtml) {
  EXPECT_EQ(content_type_for_path("/"), "text/html");
  EXPECT_EQ(content_type_for_path("/page"), "text/html");
  // Dot in a directory name must not count as an extension.
  EXPECT_EQ(content_type_for_path("/v1.2/page"), "text/html");
}

TEST(ContentTypeForPath, StripsQuery) {
  EXPECT_EQ(content_type_for_path("/lib.js?v=1.css"), "application/javascript");
}

TEST(ContentTypeForPath, UnknownExtensionIsOctetStream) {
  EXPECT_EQ(content_type_for_path("/file.xyz"), "application/octet-stream");
}

TEST(ClassifyContentType, IgnoresParametersAndCase) {
  EXPECT_EQ(classify_content_type("text/HTML; charset=utf-8"), ResourceKind::kHtml);
  EXPECT_EQ(classify_content_type("text/css"), ResourceKind::kCss);
  EXPECT_EQ(classify_content_type("application/javascript"),
            ResourceKind::kJavaScript);
  EXPECT_EQ(classify_content_type("text/javascript"), ResourceKind::kJavaScript);
  EXPECT_EQ(classify_content_type("image/png"), ResourceKind::kImage);
  EXPECT_EQ(classify_content_type("font/woff2"), ResourceKind::kFont);
  EXPECT_EQ(classify_content_type("application/json"), ResourceKind::kJson);
  EXPECT_EQ(classify_content_type("video/mp4"), ResourceKind::kOther);
}

TEST(KindTables, RoundTripThroughContentType) {
  for (const auto kind :
       {ResourceKind::kHtml, ResourceKind::kCss, ResourceKind::kJavaScript,
        ResourceKind::kImage, ResourceKind::kFont, ResourceKind::kJson}) {
    EXPECT_EQ(classify_content_type(content_type_for_kind(kind)), kind)
        << resource_kind_name(kind);
  }
}

TEST(KindTables, ExtensionConsistentWithContentType) {
  for (const auto kind :
       {ResourceKind::kHtml, ResourceKind::kCss, ResourceKind::kJavaScript,
        ResourceKind::kImage, ResourceKind::kFont, ResourceKind::kJson}) {
    const std::string path = std::string{"/x"} + std::string{extension_for_kind(kind)};
    EXPECT_EQ(classify_content_type(content_type_for_path(path)), kind)
        << resource_kind_name(kind);
  }
}

}  // namespace
}  // namespace mahimahi::http
