// Browser model tests over a hand-built replayed site.

#include "web/browser.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "replay/origin_servers.hpp"

namespace mahimahi::web {
namespace {

using namespace mahimahi::literals;

const net::Address kPrimary{net::Ipv4{10, 1, 0, 1}, 80};
const net::Address kCdn{net::Ipv4{10, 1, 0, 2}, 80};

record::RecordedExchange exchange_for(std::string_view url, std::string body,
                                      std::string_view content_type,
                                      net::Address server) {
  record::RecordedExchange exchange;
  exchange.request = http::make_get(url);
  exchange.response = http::make_ok(std::move(body), content_type);
  exchange.server_address = server;
  return exchange;
}

/// Recorded site: root HTML -> {2 images on primary, js on cdn};
/// js -> json on cdn. Five objects across two origins.
record::RecordStore small_site() {
  record::RecordStore store;
  store.add(exchange_for(
      "http://www.s.test/",
      "<html><img src=\"/a.jpg\"><img src=\"/b.jpg\">"
      "<script src=\"http://cdn.s.test/app.js\"></script></html>",
      "text/html", kPrimary));
  store.add(exchange_for("http://www.s.test/a.jpg", std::string(3000, 'A'),
                         "image/jpeg", kPrimary));
  store.add(exchange_for("http://www.s.test/b.jpg", std::string(4000, 'B'),
                         "image/jpeg", kPrimary));
  store.add(exchange_for("http://cdn.s.test/app.js",
                         "loadSubresource(\"http://cdn.s.test/d.json\");",
                         "application/javascript", kCdn));
  store.add(exchange_for("http://cdn.s.test/d.json", "{\"k\":1}",
                         "application/json", kCdn));
  return store;
}

struct BrowserHarness {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  record::RecordStore store;
  replay::OriginServerSet servers;
  net::DnsServer dns;
  Browser browser;

  explicit BrowserHarness(record::RecordStore s, BrowserConfig config = {})
      : store{std::move(s)},
        servers{fabric, store},
        dns{fabric, net::Address{net::Ipv4{10, 250, 0, 1}, net::kDnsPort},
            servers.dns_table()},
        browser{fabric, dns.address(), config, util::Rng{7}} {
    loop.set_event_limit(20'000'000);
  }

  PageLoadResult load(const std::string& url) {
    std::optional<PageLoadResult> result;
    browser.load(url, [&](PageLoadResult r) { result = std::move(r); });
    loop.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(PageLoadResult{});
  }
};

TEST(Browser, LoadsWholeDependencyTree) {
  BrowserHarness h{small_site()};
  const auto result = h.load("http://www.s.test/");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, 5u);
  EXPECT_EQ(result.objects_failed, 0u);
  EXPECT_EQ(result.origins_contacted, 2u);
  EXPECT_GT(result.bytes_downloaded, 7000u);
  EXPECT_GT(result.page_load_time, 0);
}

TEST(Browser, PltIncludesComputeAndLayout) {
  BrowserConfig config;
  config.compute_jitter_sigma = 0.0;  // deterministic compute
  BrowserHarness h{small_site(), config};
  const auto result = h.load("http://www.s.test/");
  // Lower bound: main-thread overhead for the HTML and the script, the
  // parallel overhead for the three leaf objects, plus final layout.
  const Microseconds floor = 2 * config.per_object_overhead +
                             3 * config.parallel_object_overhead +
                             config.final_layout_cost;
  EXPECT_GT(result.page_load_time, floor);
}

TEST(Browser, MissingSubresourceCountsAsFailure) {
  record::RecordStore store;
  store.add(exchange_for("http://www.s.test/",
                         "<html><img src=\"/missing.jpg\"></html>", "text/html",
                         kPrimary));
  BrowserHarness h{std::move(store)};
  const auto result = h.load("http://www.s.test/");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.objects_loaded, 1u);   // the HTML
  EXPECT_EQ(result.objects_failed, 1u);   // the 404 image
}

TEST(Browser, FollowsRedirects) {
  record::RecordStore store;
  record::RecordedExchange redirect;
  redirect.request = http::make_get("http://www.s.test/");
  redirect.response.status = 302;
  redirect.response.reason = "Found";
  redirect.response.headers.add("Location", "http://www.s.test/home");
  redirect.server_address = kPrimary;
  store.add(redirect);
  store.add(exchange_for("http://www.s.test/home", "<html>home</html>",
                         "text/html", kPrimary));
  BrowserHarness h{std::move(store)};
  const auto result = h.load("http://www.s.test/");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, 2u);
}

TEST(Browser, UnresolvableHostFailsLoadButCompletes) {
  record::RecordStore store;
  store.add(exchange_for("http://www.s.test/",
                         "<html><img src=\"http://ghost.test/x.jpg\"></html>",
                         "text/html", kPrimary));
  BrowserHarness h{std::move(store)};
  const auto result = h.load("http://www.s.test/");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.objects_failed, 1u);
  EXPECT_FALSE(result.errors.empty());
}

TEST(Browser, BadRootUrlFailsImmediately) {
  BrowserHarness h{small_site()};
  const auto result = h.load("not a url");
  EXPECT_FALSE(result.success);
  ASSERT_FALSE(result.errors.empty());
}

TEST(Browser, PerOriginConnectionCapRespected) {
  // 20 images on one origin, cap 6: at most 6 connections accepted.
  record::RecordStore store;
  std::string html = "<html>";
  for (int i = 0; i < 20; ++i) {
    html += "<img src=\"/i" + std::to_string(i) + ".jpg\">";
  }
  html += "</html>";
  store.add(exchange_for("http://www.s.test/", html, "text/html", kPrimary));
  for (int i = 0; i < 20; ++i) {
    store.add(exchange_for("http://www.s.test/i" + std::to_string(i) + ".jpg",
                           std::string(2000, 'x'), "image/jpeg", kPrimary));
  }
  BrowserHarness h{std::move(store)};
  const auto result = h.load("http://www.s.test/");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.objects_loaded, 21u);
  EXPECT_LE(result.connections_opened, 7u);  // 1 for html + up to 6 parallel
  EXPECT_EQ(h.servers.connections_accepted(), result.connections_opened);
}

TEST(Browser, DuplicateReferencesFetchedOnce) {
  record::RecordStore store;
  store.add(exchange_for("http://www.s.test/",
                         "<html><img src=\"/x.jpg\"><img src=\"/x.jpg\">"
                         "<img src=\"/x.jpg\"></html>",
                         "text/html", kPrimary));
  store.add(exchange_for("http://www.s.test/x.jpg", std::string(100, 'x'),
                         "image/jpeg", kPrimary));
  BrowserHarness h{std::move(store)};
  const auto result = h.load("http://www.s.test/");
  EXPECT_EQ(result.objects_loaded, 2u);
  EXPECT_EQ(h.servers.requests_served(), 2u);
}

TEST(Browser, SequentialLoadsAreIndependent) {
  BrowserHarness h{small_site()};
  const auto first = h.load("http://www.s.test/");
  const auto second = h.load("http://www.s.test/");
  EXPECT_TRUE(first.success);
  EXPECT_TRUE(second.success);
  EXPECT_EQ(first.objects_loaded, second.objects_loaded);
}

TEST(Browser, JitterVariesPltAcrossLoads) {
  BrowserConfig config;
  config.compute_jitter_sigma = 0.05;
  BrowserHarness h{small_site(), config};
  const auto a = h.load("http://www.s.test/");
  const auto b = h.load("http://www.s.test/");
  EXPECT_NE(a.page_load_time, b.page_load_time);
}

}  // namespace
}  // namespace mahimahi::web
