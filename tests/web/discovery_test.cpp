#include "web/discovery.hpp"

#include <gtest/gtest.h>

namespace mahimahi::web {
namespace {

using http::ResourceKind;

TEST(ExtractReferences, HtmlSrcAndHref) {
  const auto refs = extract_references(
      ResourceKind::kHtml,
      "<script src=\"http://a.test/x.js\"></script>\n"
      "<img src=\"/img/logo.png\">\n"
      "<link rel=\"stylesheet\" href=\"style.css\">\n");
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0], "http://a.test/x.js");
  EXPECT_EQ(refs[1], "/img/logo.png");
  EXPECT_EQ(refs[2], "style.css");
}

TEST(ExtractReferences, CssUrl) {
  const auto refs = extract_references(
      ResourceKind::kCss, ".a{background:url(http://b.test/i.png)} .b{font:url(/f.woff2)}");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], "http://b.test/i.png");
  EXPECT_EQ(refs[1], "/f.woff2");
}

TEST(ExtractReferences, JsLoadSubresource) {
  const auto refs = extract_references(
      ResourceKind::kJavaScript,
      "var x=1;\nloadSubresource(\"http://c.test/data.json\");\n// comment\n");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], "http://c.test/data.json");
}

TEST(ExtractReferences, LeafKindsReferenceNothing) {
  const std::string body = "src=\"http://x.test/y\" url(z) loadSubresource(\"w\")";
  EXPECT_TRUE(extract_references(ResourceKind::kImage, body).empty());
  EXPECT_TRUE(extract_references(ResourceKind::kFont, body).empty());
  EXPECT_TRUE(extract_references(ResourceKind::kJson, body).empty());
  EXPECT_TRUE(extract_references(ResourceKind::kOther, body).empty());
}

TEST(ExtractReferences, UnterminatedAttributeIgnored) {
  const auto refs =
      extract_references(ResourceKind::kHtml, "<img src=\"http://a.test/unclosed");
  EXPECT_TRUE(refs.empty());
}

TEST(ExtractReferences, EmptyBody) {
  EXPECT_TRUE(extract_references(ResourceKind::kHtml, "").empty());
}

TEST(DiscoverSubresources, ResolvesRelativeAgainstBase) {
  const auto base = *http::parse_url("http://www.site.test/dir/page.html");
  const auto urls = discover_subresources(
      ResourceKind::kHtml, base,
      "<img src=\"local.png\"><img src=\"/abs.png\">"
      "<script src=\"http://cdn.test/lib.js\"></script>");
  ASSERT_EQ(urls.size(), 3u);
  EXPECT_EQ(urls[0].to_string(), "http://www.site.test/dir/local.png");
  EXPECT_EQ(urls[1].to_string(), "http://www.site.test/abs.png");
  EXPECT_EQ(urls[2].to_string(), "http://cdn.test/lib.js");
}

TEST(DiscoverSubresources, DeduplicatesAndSkipsPseudoUrls) {
  const auto base = *http::parse_url("http://a.test/");
  const auto urls = discover_subresources(
      ResourceKind::kHtml, base,
      "<img src=\"x.png\"><img src=\"x.png\">"
      "<a href=\"#top\"></a><a href=\"javascript:void(0)\"></a>"
      "<img src=\"data:image/png;base64,AAAA\">");
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0].path, "/x.png");
}

TEST(DiscoverSubresources, SchemeRelativeInheritsBaseScheme) {
  const auto base = *http::parse_url("http://a.test/");
  const auto urls = discover_subresources(ResourceKind::kHtml, base,
                                          "<img src=\"//cdn.test/i.png\">");
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0].scheme, "http");
  EXPECT_EQ(urls[0].host, "cdn.test");
}

}  // namespace
}  // namespace mahimahi::web
