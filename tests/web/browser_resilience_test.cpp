// Browser resilience under injected origin faults: per-request deadlines,
// capped-backoff retries, and graceful degradation. The fault plan is a
// pure function of its seed, so every expectation here is deterministic —
// the same crashes hit the same requests on every run.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "replay/origin_servers.hpp"
#include "web/browser.hpp"

namespace mahimahi::web {
namespace {

using namespace mahimahi::literals;

const net::Address kPrimary{net::Ipv4{10, 1, 0, 1}, 80};
const net::Address kCdn{net::Ipv4{10, 1, 0, 2}, 80};

record::RecordedExchange exchange_for(std::string_view url, std::string body,
                                      std::string_view content_type,
                                      net::Address server) {
  record::RecordedExchange exchange;
  exchange.request = http::make_get(url);
  exchange.response = http::make_ok(std::move(body), content_type);
  exchange.server_address = server;
  return exchange;
}

/// Root HTML -> {2 images on primary, js on cdn}; js -> json on cdn.
record::RecordStore small_site() {
  record::RecordStore store;
  store.add(exchange_for(
      "http://www.s.test/",
      "<html><img src=\"/a.jpg\"><img src=\"/b.jpg\">"
      "<script src=\"http://cdn.s.test/app.js\"></script></html>",
      "text/html", kPrimary));
  store.add(exchange_for("http://www.s.test/a.jpg", std::string(3000, 'A'),
                         "image/jpeg", kPrimary));
  store.add(exchange_for("http://www.s.test/b.jpg", std::string(4000, 'B'),
                         "image/jpeg", kPrimary));
  store.add(exchange_for("http://cdn.s.test/app.js",
                         "loadSubresource(\"http://cdn.s.test/d.json\");",
                         "application/javascript", kCdn));
  store.add(exchange_for("http://cdn.s.test/d.json", "{\"k\":1}",
                         "application/json", kCdn));
  return store;
}

struct FaultedHarness {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  record::RecordStore store;
  replay::OriginServerSet servers;
  net::DnsServer dns;
  Browser browser;

  FaultedHarness(record::RecordStore s, fault::FaultPlan plan,
                 BrowserConfig config = {})
      : store{std::move(s)},
        servers{fabric, store, options_with(std::move(plan))},
        dns{fabric, net::Address{net::Ipv4{10, 250, 0, 1}, net::kDnsPort},
            servers.dns_table()},
        browser{fabric, dns.address(), config, util::Rng{7}} {
    loop.set_event_limit(20'000'000);
  }

  static replay::OriginServerSet::Options options_with(fault::FaultPlan plan) {
    replay::OriginServerSet::Options options;
    options.fault = std::move(plan);
    return options;
  }

  PageLoadResult load(const std::string& url) {
    std::optional<PageLoadResult> result;
    browser.load(url, [&](PageLoadResult r) { result = std::move(r); });
    loop.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(PageLoadResult{});
  }
};

fault::FaultPlan crash_plan(double p, std::uint64_t seed = 1234) {
  return fault::FaultPlan{
      fault::parse_fault_spec("crash:p=" + std::to_string(p)), seed};
}

BrowserConfig defended_config() {
  BrowserConfig config;
  config.compute_jitter_sigma = 0.0;
  config.resilience.request_deadline = 2_s;
  config.resilience.max_retries = 4;
  config.resilience.backoff_base = 100_ms;
  config.resilience.backoff_max = 1_s;
  return config;
}

TEST(BrowserResilience, DisabledPolicyReportsCleanCounters) {
  fault::FaultPlan no_faults;
  FaultedHarness h{small_site(), no_faults};
  const PageLoadResult result = h.load("http://www.s.test/");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.timeouts, 0u);
  EXPECT_FALSE(result.degraded);
  // Clean load: the degraded PLT *is* the PLT.
  EXPECT_EQ(result.degraded_page_load_time, result.page_load_time);
}

TEST(BrowserResilience, UndefendedClientLosesCrashedObjects) {
  FaultedHarness h{small_site(), crash_plan(0.5)};
  const PageLoadResult result = h.load("http://www.s.test/");
  EXPECT_GT(result.objects_failed, 0u);
  EXPECT_EQ(result.retries, 0u);  // no policy, no retries
  EXPECT_FALSE(result.success);
  EXPECT_LE(result.degraded_page_load_time, result.page_load_time);
}

TEST(BrowserResilience, RetriesRecoverWhatNoRetryLoses) {
  // Identical plan seed: the same requests crash in both runs; only the
  // client differs. The defended client must end strictly healthier.
  const PageLoadResult undefended =
      FaultedHarness{small_site(), crash_plan(0.5)}.load("http://www.s.test/");
  const PageLoadResult defended =
      FaultedHarness{small_site(), crash_plan(0.5), defended_config()}.load(
          "http://www.s.test/");
  ASSERT_GT(undefended.objects_failed, 0u);
  EXPECT_GT(defended.retries, 0u);
  EXPECT_LT(defended.objects_failed, undefended.objects_failed);
  EXPECT_GT(defended.objects_loaded, undefended.objects_loaded);
}

TEST(BrowserResilience, DeadlineTurnsStallsIntoTimeouts) {
  // Every request stalls; without a deadline the load would never finish.
  // With one, each attempt times out, the retry budget drains, and the
  // load terminates with every object accounted for.
  fault::FaultPlan stall_everything{fault::parse_fault_spec("stall:p=1"), 5};
  BrowserConfig config;
  config.compute_jitter_sigma = 0.0;
  config.resilience.request_deadline = 300_ms;
  config.resilience.max_retries = 1;
  config.resilience.backoff_base = 50_ms;
  config.resilience.backoff_max = 100_ms;
  FaultedHarness h{small_site(), std::move(stall_everything), config};
  const PageLoadResult result = h.load("http://www.s.test/");
  EXPECT_FALSE(result.success);
  EXPECT_GE(result.timeouts, 2u);  // original + the one retry, at least
  EXPECT_EQ(result.retries, 1u);   // root html: one retry, then give up
  EXPECT_GT(result.objects_failed, 0u);
  EXPECT_FALSE(result.errors.empty());
}

TEST(BrowserResilience, DegradedPltStopsAtTheLastSuccess) {
  // Stall one mid-page object (the cdn script) and let the deadline give
  // up on it: the page "looked done" when the last image landed, well
  // before the deadline machinery finished failing — degraded PLT must
  // reflect the former, full PLT the latter.
  fault::FaultPlan stall_everything{fault::parse_fault_spec("stall:p=1"), 5};
  BrowserConfig config;
  config.compute_jitter_sigma = 0.0;
  config.resilience.request_deadline = 500_ms;
  config.resilience.max_retries = 0;  // deadline only
  // Only the CDN gets the faulted plan: build a store whose primary origin
  // serves everything except one stalled cdn object.
  FaultedHarness healthy{small_site(), fault::FaultPlan{}};
  const PageLoadResult clean = healthy.load("http://www.s.test/");

  fault::FaultSpec stall_spec;
  stall_spec.origin.stall_rate = 1.0;
  FaultedHarness h{small_site(), fault::FaultPlan{stall_spec, 5}, config};
  const PageLoadResult result = h.load("http://www.s.test/");
  // The root html is served by the same faulted set, so it stalls too and
  // fails; what matters here is the bound, degraded <= full, with the gap
  // created by deadline-detection tails.
  EXPECT_LE(result.degraded_page_load_time, result.page_load_time);
  EXPECT_TRUE(result.degraded);
  EXPECT_GE(result.timeouts, 1u);
  // And the healthy control keeps the clean-load identity.
  EXPECT_EQ(clean.degraded_page_load_time, clean.page_load_time);
}

TEST(BrowserResilience, FaultedLoadIsDeterministic) {
  // Two identical harnesses, faults and retries engaged: byte-equal
  // outcome counters and identical PLTs.
  const auto run = [] {
    return FaultedHarness{small_site(), crash_plan(0.5), defended_config()}
        .load("http://www.s.test/");
  };
  const PageLoadResult a = run();
  const PageLoadResult b = run();
  EXPECT_EQ(a.page_load_time, b.page_load_time);
  EXPECT_EQ(a.degraded_page_load_time, b.degraded_page_load_time);
  EXPECT_EQ(a.objects_loaded, b.objects_loaded);
  EXPECT_EQ(a.objects_failed, b.objects_failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.success, b.success);
}

}  // namespace
}  // namespace mahimahi::web
