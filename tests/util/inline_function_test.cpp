#include "util/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace mahimahi::util {
namespace {

using SmallCallback = InlineCallback<64>;

TEST(InlineCallback, DefaultIsEmpty) {
  SmallCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, InvokesSmallCallableInline) {
  int hits = 0;
  SmallCallback cb{[&hits] { ++hits; }};
  static_assert(SmallCallback::kFitsInline<decltype([&hits] { ++hits; })>);
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, HeapFallbackForLargeCallable) {
  std::array<char, 128> blob{};
  blob[0] = 5;
  int result = 0;
  SmallCallback cb{[blob, &result] { result = blob[0]; }};
  static_assert(!SmallCallback::kFitsInline<decltype([blob, &result] {})>);
  cb();
  EXPECT_EQ(result, 5);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  int hits = 0;
  SmallCallback a{[&hits] { ++hits; }};
  SmallCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  SmallCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, ResetReleasesCapturedResources) {
  // cancel() relies on reset() releasing captures immediately — e.g. a
  // Packet's payload buffer must not live until the tombstone pops.
  auto resource = std::make_shared<int>(42);
  SmallCallback cb{[keep = resource] { (void)keep; }};
  EXPECT_EQ(resource.use_count(), 2);
  cb.reset();
  EXPECT_EQ(resource.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, DestructorReleasesHeapBoxedResources) {
  auto resource = std::make_shared<int>(7);
  {
    std::array<char, 128> pad{};
    SmallCallback cb{[keep = resource, pad] { (void)keep; (void)pad; }};
    EXPECT_EQ(resource.use_count(), 2);
    // Move a boxed callable: the box pointer transfers, no deep copy.
    SmallCallback other{std::move(cb)};
    EXPECT_EQ(resource.use_count(), 2);
  }
  EXPECT_EQ(resource.use_count(), 1);
}

TEST(InlineCallback, ReassignmentDestroysPrevious) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  SmallCallback cb{[keep = first] { (void)keep; }};
  cb = SmallCallback{[keep = second] { (void)keep; }};
  EXPECT_EQ(first.use_count(), 1);
  EXPECT_EQ(second.use_count(), 2);
}

}  // namespace
}  // namespace mahimahi::util
