#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace mahimahi::util {
namespace {

TEST(RunningStats, MeanAndStdDev) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s{{10.0, 20.0, 30.0, 40.0}};
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Samples, PercentileSingleSample) {
  Samples s{{42.0}};
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Samples, PercentileOutOfRangeThrows) {
  Samples s{{1.0}};
  EXPECT_THROW((void)s.percentile(-1.0), InternalError);
  EXPECT_THROW((void)s.percentile(100.5), InternalError);
}

TEST(Samples, CdfAt) {
  Samples s{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(Samples, CdfPointsMonotone) {
  Samples s{{5.0, 1.0, 3.0, 2.0, 4.0}};
  const auto points = s.cdf_points();
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].first, points[i].first);
    EXPECT_LT(points[i - 1].second, points[i].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Samples, AddInvalidatesSortCache) {
  Samples s{{3.0, 1.0}};
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Samples, MeanStdDevMatchRunningStats) {
  Samples s{{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}};
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
}

TEST(RunningStats, MergeMatchesSequentialAccumulation) {
  // Chan-style combine of per-task accumulators must equal one sequential
  // pass — the statistics half of the parallel measurement contract.
  const double values[] = {3.5, -1.0, 0.0, 12.25, 7.5, 2.0, 2.0, -8.75, 4.0};
  RunningStats sequential;
  RunningStats left;
  RunningStats right;
  int i = 0;
  for (const double v : values) {
    sequential.add(v);
    (i++ < 4 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_DOUBLE_EQ(left.mean(), sequential.mean());
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats stats;
  stats.add(2.0);
  stats.add(4.0);
  RunningStats empty;
  stats.merge(empty);  // no-op
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  empty.merge(stats);  // adopt
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 4.0);
}

TEST(Samples, AppendPreservesBothInsertionOrders) {
  Samples front{{5.0, 1.0, 3.0}};
  const Samples back{{2.0, 9.0}};
  front.append(back);
  const std::vector<double> expected{5.0, 1.0, 3.0, 2.0, 9.0};
  EXPECT_EQ(front.values(), expected);
}

TEST(Samples, AppendInvalidatesSortCache) {
  Samples samples{{4.0, 2.0}};
  EXPECT_DOUBLE_EQ(samples.min(), 2.0);  // forces the sort cache
  samples.append(Samples{{1.0}});
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 4.0);
}

TEST(MergeOrdered, ConcatenatesPartsInGivenOrder) {
  const auto merged =
      merge_ordered({Samples{{1.0, 2.0}}, Samples{}, Samples{{0.5}}});
  const std::vector<double> expected{1.0, 2.0, 0.5};
  EXPECT_EQ(merged.values(), expected);
}

TEST(MergeOrdered, EmptyInput) {
  EXPECT_TRUE(merge_ordered({}).empty());
  EXPECT_TRUE(merge_ordered({Samples{}, Samples{}}).empty());
}

TEST(PercentDifference, Signs) {
  EXPECT_DOUBLE_EQ(percent_difference(100.0, 110.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_difference(100.0, 90.0), -10.0);
  EXPECT_DOUBLE_EQ(percent_difference(50.0, 50.0), 0.0);
}

TEST(RenderTable, AlignsColumns) {
  const auto text = render_table({{"a", "bb"}, {"ccc", "d"}});
  EXPECT_EQ(text, "a    bb\nccc  d\n");
}

TEST(RenderTable, RaggedRows) {
  const auto text = render_table({{"x"}, {"yy", "z"}});
  EXPECT_EQ(text, "x\nyy  z\n");
}

}  // namespace
}  // namespace mahimahi::util
