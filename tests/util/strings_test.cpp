#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mahimahi::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Split, NoDelimiterYieldsWholeString) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Split, TrailingDelimiterYieldsTrailingEmpty) {
  const auto fields = split("a,b,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST(SplitOnce, SplitsOnFirstOccurrence) {
  const auto [head, tail] = split_once("key:value:extra", ':');
  EXPECT_EQ(head, "key");
  EXPECT_EQ(tail, "value:extra");
}

TEST(SplitOnce, AbsentDelimiterReturnsWholeAndEmpty) {
  const auto [head, tail] = split_once("justkey", ':');
  EXPECT_EQ(head, "justkey");
  EXPECT_EQ(tail, "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, PreservesInteriorWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(ToLower, BasicAscii) {
  EXPECT_EQ(to_lower("Content-TYPE"), "content-type");
  EXPECT_EQ(to_lower(""), "");
  EXPECT_EQ(to_lower("123!@#"), "123!@#");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("Content-Length", "content-lengt"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("htt", "http"));
  EXPECT_TRUE(ends_with("style.css", ".css"));
  EXPECT_FALSE(ends_with("css", ".css"));
}

TEST(ToHex, ZeroPadsTo16) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(to_hex(~0ULL), "ffffffffffffffff");
}

TEST(ParseU64, AcceptsPlainDecimal) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, ~0ULL);
}

TEST(ParseU64, RejectsGarbage) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64(" 12", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
}

TEST(ParseHexU64, AcceptsBothCases) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_hex_u64("ff", v));
  EXPECT_EQ(v, 255u);
  EXPECT_TRUE(parse_hex_u64("DEADbeef", v));
  EXPECT_EQ(v, 0xdeadbeefULL);
  EXPECT_TRUE(parse_hex_u64("0", v));
  EXPECT_EQ(v, 0u);
}

TEST(ParseHexU64, RejectsBadInput) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_hex_u64("", v));
  EXPECT_FALSE(parse_hex_u64("0x12", v));
  EXPECT_FALSE(parse_hex_u64("12g", v));
  EXPECT_FALSE(parse_hex_u64("11111111111111111", v));  // 17 digits
}

TEST(FormatBytes, HumanUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(1024ull * 1024), "1.0 MiB");
}

}  // namespace
}  // namespace mahimahi::util
