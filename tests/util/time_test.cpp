#include "util/time.hpp"

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace mahimahi {
namespace {

using namespace mahimahi::literals;

TEST(TimeLiterals, UnitsCompose) {
  EXPECT_EQ(1_s, 1'000_ms);
  EXPECT_EQ(1_ms, 1'000_us);
  EXPECT_EQ(90_ms, 90'000);
  EXPECT_EQ(2_s + 500_ms, 2'500'000);
}

TEST(TimeConversions, ToMsAndBack) {
  EXPECT_DOUBLE_EQ(to_ms(1'500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(0), 0.0);
  EXPECT_EQ(from_ms(1.5), 1'500);
  EXPECT_EQ(from_ms(0.0004), 0);     // rounds to nearest
  EXPECT_EQ(from_ms(0.0006), 1);
  EXPECT_EQ(from_ms(-2.0), -2'000);  // negative values round correctly
}

TEST(TimeConversions, RoundTripStable) {
  for (const Microseconds us : {0_us, 1_us, 999_us, 1_ms, 12'345_us, 7_s}) {
    EXPECT_EQ(from_ms(to_ms(us)), us) << us;
  }
}

TEST(Logging, ThresholdFiltersLevels) {
  using util::LogLevel;
  const LogLevel original = util::log_level();
  util::set_log_level(LogLevel::kError);
  EXPECT_EQ(util::log_level(), LogLevel::kError);
  EXPECT_TRUE(LogLevel::kWarn < util::log_level());
  util::set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(LogLevel::kInfo >= util::log_level());
  util::set_log_level(original);
}

}  // namespace
}  // namespace mahimahi
