#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mahimahi::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root{7};
  Rng fork_a = root.fork("browser");
  Rng fork_a2 = root.fork("browser");
  Rng fork_b = root.fork("network");
  EXPECT_EQ(fork_a.next(), fork_a2.next());
  // Forking must not perturb the parent.
  Rng root2{7};
  (void)root2.fork("anything");
  Rng root3{7};
  EXPECT_EQ(root2.next(), root3.next());
  // Distinct stream names give distinct streams.
  EXPECT_NE(fork_a.next(), fork_b.next());
}

TEST(Rng, UniformIntRespectsBoundsInclusive) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{13};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng{17};
  double sum = 0;
  double sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng{19};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ChanceEdgesAndFrequency) {
  Rng rng{23};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Fnv1a, KnownValuesAndDistinctness) {
  // FNV-1a offset basis for empty input.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
  EXPECT_EQ(fnv1a("mahimahi"), fnv1a("mahimahi"));
}

TEST(Rng, PerTaskStreamsAreScheduleIndependent) {
  // The parallel runner's seeding contract: one Rng per task, derived
  // from (seed, index) before dispatch. Interleaving draws across
  // instances — as concurrent tasks do in wall-clock time — must not
  // change any stream's sequence.
  auto make_task_rng = [](int index) {
    return Rng{0xFEEDULL}.fork("load-" + std::to_string(index));
  };
  std::vector<std::vector<std::uint64_t>> sequential;
  for (int task = 0; task < 4; ++task) {
    Rng rng = make_task_rng(task);
    auto& draws = sequential.emplace_back();
    for (int d = 0; d < 16; ++d) {
      draws.push_back(rng.next());
    }
  }
  // Round-robin "schedule": one draw per task per round.
  std::vector<Rng> rngs;
  for (int task = 0; task < 4; ++task) {
    rngs.push_back(make_task_rng(task));
  }
  std::vector<std::vector<std::uint64_t>> interleaved(4);
  for (int d = 0; d < 16; ++d) {
    for (int task = 0; task < 4; ++task) {
      interleaved[static_cast<std::size_t>(task)].push_back(
          rngs[static_cast<std::size_t>(task)].next());
    }
  }
  EXPECT_EQ(sequential, interleaved);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{29};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace mahimahi::util
