#include "trace/synthesis.hpp"

#include <gtest/gtest.h>

namespace mahimahi::trace {
namespace {

using namespace mahimahi::literals;

TEST(ConstantRate, AchievesRequestedRate) {
  for (const double bps : {1e6, 14e6, 25e6, 1000e6}) {
    const auto trace = constant_rate(bps, 1_s);
    EXPECT_NEAR(trace.average_bits_per_second(), bps, bps * 0.01) << bps;
  }
}

TEST(ConstantRate, SpacingIsUniform) {
  const auto trace = constant_rate(12e6, 100_ms);  // 1 ms spacing
  const auto& ops = trace.opportunities();
  ASSERT_GT(ops.size(), 10u);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(ops[i] - ops[i - 1]), 1000.0, 1.0);
  }
}

TEST(ConstantRate, VeryLowRateStillValid) {
  // 1 kbit/s: opportunity every 12 s; duration shorter than spacing.
  const auto trace = constant_rate(1e3, 1_s);
  EXPECT_GE(trace.opportunity_count(), 1u);
  EXPECT_GT(trace.period(), 0);
}

TEST(ConstantRate, RejectsBadArgs) {
  EXPECT_THROW(constant_rate(0, 1_s), std::invalid_argument);
  EXPECT_THROW(constant_rate(1e6, 0), std::invalid_argument);
}

TEST(CellularLike, RateStaysWithinBounds) {
  util::Rng rng{77};
  const auto trace = cellular_like(rng, 10_s, 1e6, 24e6);
  const double avg = trace.average_bits_per_second();
  EXPECT_GT(avg, 0.5e6);
  EXPECT_LT(avg, 30e6);
  // Timestamps valid by construction (constructor validates).
  EXPECT_GT(trace.opportunity_count(), 100u);
}

TEST(CellularLike, DeterministicGivenSeed) {
  util::Rng a{123};
  util::Rng b{123};
  const auto t1 = cellular_like(a, 2_s);
  const auto t2 = cellular_like(b, 2_s);
  EXPECT_EQ(t1.opportunities(), t2.opportunities());
}

TEST(CellularLike, VariesOverTime) {
  util::Rng rng{5};
  const auto trace = cellular_like(rng, 10_s, 1e6, 24e6);
  // Compare opportunity counts in first and second half: a flat trace
  // would have (nearly) equal counts; the walk should differ measurably
  // for this seed.
  const auto& ops = trace.opportunities();
  std::size_t first_half = 0;
  for (const auto t : ops) {
    if (t < 5_s) {
      ++first_half;
    }
  }
  const std::size_t second_half = ops.size() - first_half;
  const double ratio = static_cast<double>(first_half) /
                       static_cast<double>(std::max<std::size_t>(second_half, 1));
  EXPECT_TRUE(ratio < 0.9 || ratio > 1.1)
      << "first=" << first_half << " second=" << second_half;
}

TEST(PoissonRate, MeanRateApproximatelyCorrect) {
  util::Rng rng{11};
  const auto trace = poisson_rate(rng, 12e6, 10_s);
  EXPECT_NEAR(trace.average_bits_per_second(), 12e6, 12e6 * 0.05);
}

TEST(OnOff, DeliversOnlyDuringOnPeriods) {
  const auto trace = on_off(12e6, 1_s, 100_ms, 100_ms);
  for (const auto t : trace.opportunities()) {
    const Microseconds phase = t % 200_ms;
    EXPECT_LE(phase, 100_ms) << "opportunity in off period at " << t;
  }
  // Duty cycle 50%: average rate about half the on-rate.
  EXPECT_NEAR(trace.average_bits_per_second(), 6e6, 0.1 * 12e6);
}

TEST(OnOff, RejectsBadArgs) {
  EXPECT_THROW(on_off(0, 1_s, 1_ms, 1_ms), std::invalid_argument);
  EXPECT_THROW(on_off(1e6, 1_s, 0, 1_ms), std::invalid_argument);
}

}  // namespace
}  // namespace mahimahi::trace
