#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace mahimahi::trace {
namespace {

using namespace mahimahi::literals;

TEST(PacketTrace, ParsesMillisecondLines) {
  const auto trace = PacketTrace::parse("0\n5\n10\n");
  EXPECT_EQ(trace.opportunity_count(), 3u);
  EXPECT_EQ(trace.opportunities()[1], 5_ms);
  EXPECT_EQ(trace.period(), 10_ms);
}

TEST(PacketTrace, IgnoresCommentsAndBlanks) {
  const auto trace = PacketTrace::parse("# header\n\n3\n  \n7 # inline\n");
  EXPECT_EQ(trace.opportunity_count(), 2u);
  EXPECT_EQ(trace.opportunities()[0], 3_ms);
  EXPECT_EQ(trace.opportunities()[1], 7_ms);
}

TEST(PacketTrace, RejectsInvalidInput) {
  EXPECT_THROW(PacketTrace::parse(""), std::invalid_argument);
  EXPECT_THROW(PacketTrace::parse("abc\n"), std::invalid_argument);
  EXPECT_THROW(PacketTrace::parse("-3\n"), std::invalid_argument);
  EXPECT_THROW(PacketTrace::parse("5\n3\n"), std::invalid_argument);  // decreasing
  EXPECT_THROW(PacketTrace::parse("0\n"), std::invalid_argument);  // zero period
}

TEST(PacketTrace, OpportunityTimeWrapsByPeriod) {
  const PacketTrace trace{{2_ms, 10_ms}};
  EXPECT_EQ(trace.opportunity_time(0), 2_ms);
  EXPECT_EQ(trace.opportunity_time(1), 10_ms);
  EXPECT_EQ(trace.opportunity_time(2), 12_ms);  // lap 1 + 2ms
  EXPECT_EQ(trace.opportunity_time(3), 20_ms);
  EXPECT_EQ(trace.opportunity_time(4), 22_ms);
}

TEST(PacketTrace, FirstOpportunityAtOrAfter) {
  const PacketTrace trace{{2_ms, 10_ms}};
  EXPECT_EQ(trace.first_opportunity_at_or_after(0), 0u);
  EXPECT_EQ(trace.first_opportunity_at_or_after(2_ms), 0u);
  EXPECT_EQ(trace.first_opportunity_at_or_after(2_ms + 1), 1u);
  EXPECT_EQ(trace.first_opportunity_at_or_after(10_ms), 1u);
  EXPECT_EQ(trace.first_opportunity_at_or_after(10_ms + 1), 2u);
  // Lap timestamps: idx2=12ms, idx3=20ms, idx4=22ms, idx5=30ms.
  EXPECT_EQ(trace.first_opportunity_at_or_after(25_ms), 5u);
}

TEST(PacketTrace, FirstOpportunityConsistentWithTime) {
  const PacketTrace trace{{1_ms, 4_ms, 4_ms, 9_ms}};
  for (Microseconds t = 0; t <= 30_ms; t += 137) {
    const auto idx = trace.first_opportunity_at_or_after(t);
    EXPECT_GE(trace.opportunity_time(idx), t) << "t=" << t;
    if (idx > 0) {
      EXPECT_LT(trace.opportunity_time(idx - 1), t) << "t=" << t;
    }
  }
}

TEST(PacketTrace, AverageRate) {
  // 10 opportunities over 10 ms = 1000 packets/s = 12 Mbit/s at 1500 B.
  std::vector<Microseconds> opportunities;
  for (int i = 1; i <= 10; ++i) {
    opportunities.push_back(i * 1_ms);
  }
  const PacketTrace trace{std::move(opportunities)};
  EXPECT_NEAR(trace.average_bits_per_second(), 12e6, 1e4);
}

TEST(PacketTrace, SaveLoadRoundTrip) {
  const PacketTrace trace{{1_ms, 5_ms, 9_ms}};
  const auto path = std::filesystem::temp_directory_path() / "mahi_trace_test.txt";
  trace.save(path);
  const auto loaded = PacketTrace::load(path);
  EXPECT_EQ(loaded.opportunities(), trace.opportunities());
  std::filesystem::remove(path);
}

TEST(PacketTrace, LoadMissingFileThrows) {
  EXPECT_THROW(PacketTrace::load("/nonexistent/trace.txt"), std::runtime_error);
}

}  // namespace
}  // namespace mahimahi::trace
